package asm

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/workload"
)

// runProgram executes an assembled program on the architectural simulator
// until halt, returning the simulator.
func runProgram(t *testing.T, p *workload.Program, maxInsts uint64) *arch.Sim {
	t.Helper()
	m, err := p.NewMemory()
	if err != nil {
		t.Fatal(err)
	}
	s := arch.New(m, p.Entry)
	_, last, err := s.Run(maxInsts)
	if err != nil {
		t.Fatal(err)
	}
	if last.Exception != arch.ExcNone {
		t.Fatalf("exception %v at %#x", last.Exception, last.PC)
	}
	if !last.Halted {
		t.Fatal("program did not halt")
	}
	return s
}

func TestArithmeticAndLiterals(t *testing.T) {
	p := MustAssemble("t", `
		addq zero, #10, r1     // r1 = 10
		addq zero, #3, r2
		mulq r1, r2, r3        ; r3 = 30
		subq r3, #5, r4        ; r4 = 25
		sll  r4, #2, r5        ; r5 = 100
		sra  r5, #1, r6        ; 50
		halt
	`)
	s := runProgram(t, p, 100)
	want := map[int]uint64{1: 10, 2: 3, 3: 30, 4: 25, 5: 100, 6: 50}
	for r, v := range want {
		if s.Regs[r] != v {
			t.Errorf("r%d = %d, want %d", r, s.Regs[r], v)
		}
	}
}

func TestLoopAndBranches(t *testing.T) {
	p := MustAssemble("t", `
		.imm r1 5
	loop:
		addq r2, r1, r2
		subq r1, #1, r1
		bgt  r1, loop
		halt
	`)
	s := runProgram(t, p, 1000)
	if s.Regs[2] != 15 {
		t.Errorf("sum = %d, want 15", s.Regs[2])
	}
}

func TestDataSegmentLoadsStores(t *testing.T) {
	p := MustAssemble("t", `
		.data buf 256
		.quad buf 8 12345
		.base r10 buf
		ldq  r1, 8(r10)
		addq r1, #1, r1
		stq  r1, 16(r10)
		ldl  r2, 16(r10)
		stl  r2, 24(r10)
		halt
	`)
	s := runProgram(t, p, 1000)
	if s.Regs[1] != 12346 || s.Regs[2] != 12346 {
		t.Errorf("r1=%d r2=%d, want 12346", s.Regs[1], s.Regs[2])
	}
}

func TestCallReturn(t *testing.T) {
	p := MustAssemble("t", `
		bsr  func
		halt
	func:
		addq zero, #7, r1
		ret
	`)
	s := runProgram(t, p, 100)
	if s.Regs[1] != 7 {
		t.Errorf("r1 = %d", s.Regs[1])
	}
}

func TestIndirectJumps(t *testing.T) {
	p := MustAssemble("t", `
		.data tbl 64
		.base r10 tbl
		bsr  helper           ; warms r4 with the return path
		halt
	helper:
		bis  ra, ra, r4       ; save the link
		jsr  r26, (r4)        ; jump back through it, relinking r26
	`)
	// The jsr jumps to the instruction after bsr (halt), so this program
	// halts; r4 holds the original link.
	s := runProgram(t, p, 100)
	if s.Regs[4] == 0 {
		t.Error("link register value lost")
	}
}

func TestRetThroughExplicitRegister(t *testing.T) {
	p := MustAssemble("t", `
		bsr  r20, func
		halt
	func:
		addq zero, #9, r1
		ret  (r20)
	`)
	s := runProgram(t, p, 100)
	if s.Regs[1] != 9 {
		t.Errorf("r1 = %d", s.Regs[1])
	}
}

func TestNegativeDisplacement(t *testing.T) {
	p := MustAssemble("t", `
		.data buf 128
		.base r10 buf
		lda  r11, 64(r10)
		addq zero, #42, r1
		stq  r1, -8(r11)
		ldq  r2, 56(r10)
		halt
	`)
	s := runProgram(t, p, 100)
	if s.Regs[2] != 42 {
		t.Errorf("r2 = %d, want 42", s.Regs[2])
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	p := MustAssemble("t", `
		# full line comment

		addq zero, #1, r1  ; trailing
		halt               // another
	`)
	s := runProgram(t, p, 10)
	if s.Regs[1] != 1 {
		t.Error("comment handling broke parsing")
	}
}

func TestAliases(t *testing.T) {
	p := MustAssemble("t", `
		.imm sp 0x7fff0000
		addq sp, #8, r1
		bis  zero, zero, v0
		halt
	`)
	s := runProgram(t, p, 100)
	if s.Regs[30] != 0x7fff0000 || s.Regs[1] != 0x7fff0008 {
		t.Errorf("sp=%#x r1=%#x", s.Regs[30], s.Regs[1])
	}
}

func TestErrors(t *testing.T) {
	tests := []struct {
		name   string
		src    string
		substr string
	}{
		{"unknown mnemonic", "frobnicate r1, r2, r3", "unknown mnemonic"},
		{"bad register", "addq r99, r1, r2", "bad register"},
		{"big literal", "addq r1, #300, r2", "exceeds 8 bits"},
		{"bad mem operand", "ldq r1, r2", "memory operand"},
		{"bad displacement", "ldq r1, 99999(r2)", "bad displacement"},
		{"empty label", ":", "empty label"},
		{"unknown directive", ".bss x 10", "unknown directive"},
		{"quad into unknown segment", ".quad nosuch 0 1", "unknown segment"},
		{"quad outside segment", ".data d 8\n.quad d 8 1", "outside segment"},
		{"base of unknown segment", ".base r1 nosuch", "unknown segment"},
		{"undefined branch label", "beq r1, nowhere", "undefined label"},
		{"operate arity", "addq r1, r2", "wants"},
		{"branch arity", "beq r1", "wants"},
		{"bad number", ".imm r1 zz", "bad number"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Assemble("t", tt.src)
			if err == nil {
				t.Fatalf("no error for %q", tt.src)
			}
			if !strings.Contains(err.Error(), tt.substr) {
				t.Errorf("error %q does not mention %q", err, tt.substr)
			}
		})
	}
}

func TestLineNumbersInErrors(t *testing.T) {
	_, err := Assemble("t", "nop\nnop\nbogus r1\n")
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error %v should name line 3", err)
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssemble did not panic on bad source")
		}
	}()
	MustAssemble("t", "bogus")
}
