package inject

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/arch"
	"repro/internal/isa"
	"repro/internal/workload"
)

// VMConfig parameterises the software-level campaign of Section 3.1: the
// fault model is a single bit flip in the result of a randomly chosen
// instruction, executed on the architectural simulator ("we abstract away
// the processor implementation ... focusing on the propagation of the
// incorrect architectural state into a soft error symptom").
type VMConfig struct {
	Bench workload.Benchmark
	Seed  int64
	Scale float64 // workload scale; 0 = 1.0

	// Trials is the number of injections (paper: ~1000 per benchmark).
	Trials int
	// Points is the number of distinct injection instructions; trials
	// are spread across them with different bit positions. 0 derives
	// Trials/8.
	Points int

	// Warmup is the instruction index where injection points begin.
	Warmup uint64
	// Spread is the range of instruction indices points are drawn from.
	Spread uint64
	// Window is how many instructions each trial observes after the
	// injection (the largest finite latency bin of Figure 2).
	Window uint64

	// Low32 restricts flips to result bits 0..31, reproducing the
	// Section 3.1 sensitivity study of virtual-address-space size.
	Low32 bool
}

func (c *VMConfig) applyDefaults() {
	if c.Scale == 0 {
		c.Scale = 1.0
	}
	if c.Trials == 0 {
		c.Trials = 1000
	}
	if c.Points == 0 {
		c.Points = (c.Trials + 7) / 8
	}
	if c.Points > c.Trials {
		c.Points = c.Trials
	}
	if c.Warmup == 0 {
		c.Warmup = 5_000
	}
	if c.Spread == 0 {
		c.Spread = 200_000
	}
	if c.Window == 0 {
		c.Window = 100_000
	}
}

// VMResult is the outcome of one software-level campaign.
type VMResult struct {
	Config VMConfig
	Trials []VMTrial
}

// MaskedFraction returns the fraction of trials whose faults were masked.
func (r *VMResult) MaskedFraction() float64 {
	masked := 0
	for _, t := range r.Trials {
		if t.Masked {
			masked++
		}
	}
	return float64(masked) / float64(len(r.Trials))
}

// Distribution bins the trials at one detection latency.
func (r *VMResult) Distribution(latency uint64) map[string]float64 {
	return VMDistribution(r.Trials, latency).Fraction
}

// RunVM executes the campaign. The golden execution advances through the
// program once; at each injection point the post-injection continuation is
// simulated once to record a golden event trace, then each trial replays
// the continuation with one result bit flipped, comparing event-by-event.
func RunVM(cfg VMConfig) (*VMResult, error) {
	cfg.applyDefaults()
	prog, err := workload.Generate(cfg.Bench, workload.Config{Seed: cfg.Seed, Scale: cfg.Scale})
	if err != nil {
		return nil, err
	}
	m, err := prog.NewMemory()
	if err != nil {
		return nil, err
	}
	m.EnableJournal()
	sim := arch.New(m, prog.Entry)
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5EED))

	// Injection points: sorted instruction indices. Points must land on
	// register-writing instructions; the walker skips forward to the
	// next one.
	points := make([]uint64, cfg.Points)
	for i := range points {
		points[i] = cfg.Warmup + uint64(rng.Int63n(int64(cfg.Spread)))
	}
	sort.Slice(points, func(i, j int) bool { return points[i] < points[j] })

	trialsPerPoint := cfg.Trials / len(points)
	extra := cfg.Trials - trialsPerPoint*len(points)

	result := &VMResult{Config: cfg}
	golden := make([]arch.Event, 0, cfg.Window)

	for pi, point := range points {
		// Advance the golden simulator to the injection point.
		for sim.InstRet < point && !sim.Stopped() {
			sim.Step()
		}
		if sim.Stopped() {
			return nil, fmt.Errorf("inject: golden run stopped at %d", sim.InstRet)
		}
		// Find the next register-writing instruction and execute it;
		// its event carries the result to corrupt.
		var injEv arch.Event
		for {
			injEv = sim.Step()
			if injEv.Exception != arch.ExcNone {
				return nil, fmt.Errorf("inject: golden exception at %#x", injEv.PC)
			}
			if injEv.DestValid && injEv.Dest != isa.RegZero {
				break
			}
		}

		// Record the golden continuation once.
		preRegs := sim.Snapshot()
		preMark := m.Snapshot()
		golden = golden[:0]
		for i := uint64(0); i < cfg.Window; i++ {
			ev := sim.Step()
			if ev.Exception != arch.ExcNone {
				return nil, fmt.Errorf("inject: golden exception at %#x", ev.PC)
			}
			golden = append(golden, ev)
		}
		goldenEnd := sim.Snapshot()

		n := trialsPerPoint
		if pi < extra {
			n++
		}
		for t := 0; t < n; t++ {
			maxBit := 64
			if cfg.Low32 {
				maxBit = 32
			}
			bit := uint8(rng.Intn(maxBit))

			// Rewind to the injection point and corrupt the result.
			m.RestoreTo(preMark)
			sim.Restore(preRegs)
			sim.SetReg(injEv.Dest, sim.Reg(injEv.Dest)^(1<<bit))

			trial := runVMTrial(sim, injEv.Dest, golden, goldenEnd)
			trial.Point = injEv.PC
			trial.Bit = bit
			result.Trials = append(result.Trials, trial)
		}

		// Rewind once more and make the golden continuation permanent
		// so the walk to the next point starts clean.
		m.RestoreTo(preMark)
		sim.Restore(preRegs)
		m.DiscardTo(0)
	}
	return result, nil
}

// runVMTrial executes the faulty continuation against the recorded golden
// events and classifies its outcome.
func runVMTrial(sim *arch.Sim, injReg isa.Reg, golden []arch.Event, goldenEnd arch.Snapshot) VMTrial {
	trial := VMTrial{
		ExcLat:     Never,
		CFVLat:     Never,
		MemAddrLat: Never,
		MemDataLat: Never,
	}

	// Divergence ledgers: registers and memory addresses whose faulty
	// values currently differ from golden.
	var divergedRegs [32]bool
	divergedCount := 0
	markReg := func(r isa.Reg, diff bool) {
		if r == isa.RegZero {
			return
		}
		i := int(r) % 32
		if diff && !divergedRegs[i] {
			divergedRegs[i] = true
			divergedCount++
		} else if !diff && divergedRegs[i] {
			divergedRegs[i] = false
			divergedCount--
		}
	}
	divergedMem := make(map[uint64]bool)

	// The injected register starts diverged.
	markReg(injReg, true)
	cfv := false
	for i := range golden {
		lat := uint64(i) + 1
		g := golden[i]
		ev := sim.Step()

		if ev.Exception != arch.ExcNone {
			trial.ExcLat = lat
			trial.ExcKind = ev.Exception
			return trial // execution cannot continue (Section 3.2.1)
		}
		if cfv {
			// After control-flow divergence only exceptions are
			// meaningful; keep running the faulty path.
			continue
		}
		if ev.PC != g.PC {
			trial.CFVLat = lat
			cfv = true
			continue
		}
		if ev.DestValid {
			markReg(ev.Dest, ev.DestVal != g.DestVal)
		}
		if ev.IsLoad || ev.IsStore {
			if ev.MemAddr != g.MemAddr {
				if trial.MemAddrLat == Never {
					trial.MemAddrLat = lat
				}
				if ev.IsStore {
					divergedMem[ev.MemAddr] = true
					divergedMem[g.MemAddr] = true
				}
			} else if ev.IsStore {
				if ev.StoreVal != g.StoreVal {
					if trial.MemDataLat == Never {
						trial.MemDataLat = lat
					}
					divergedMem[ev.MemAddr] = true
				} else {
					delete(divergedMem, ev.MemAddr)
				}
			}
		}
		if divergedCount == 0 && len(divergedMem) == 0 {
			// All architectural effects have washed out; determinism
			// guarantees the remainder of the run matches the golden
			// execution exactly.
			trial.Masked = true
			return trial
		}
	}
	if cfv {
		return trial
	}

	// Window complete without exception or control divergence: masked iff
	// all architectural effects washed out.
	if divergedCount == 0 && len(divergedMem) == 0 {
		trial.Masked = true
		// Cross-check registers against the golden end state; the
		// ledger should never disagree, but memory aliasing through
		// differing addresses is approximated, so verify cheaply.
		for r := 0; r < 31; r++ {
			if sim.Regs[r] != goldenEnd.Regs[r] {
				trial.Masked = false
				break
			}
		}
	}
	return trial
}
