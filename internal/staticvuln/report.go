package staticvuln

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/isa"
)

// InstReport is the static verdict for one instruction: which bits of its
// result are ACE, broken down by the symptom class a flip of each bit would
// eventually trigger. Weight is the (estimated or profiled) execution count,
// which turns per-instruction verdicts into program-level AVF.
type InstReport struct {
	Index   int
	PC      uint64
	Inst    isa.Inst
	Dest    isa.Reg
	HasDest bool
	Weight  uint64

	// Per-class ACE masks over the 64 result bits. A bit may appear in
	// several classes; Symptom precedence (exception > CFV > mem > register)
	// resolves the overlap, mirroring the dynamic campaign's classifier.
	Exception uint64
	CFV       uint64
	Mem       uint64
	Register  uint64

	// Latency is a static lower bound, in instructions, from the fault to
	// its first architecturally visible symptom.
	Latency uint32
}

// ACEMask returns the union of all live classes.
func (r *InstReport) ACEMask() uint64 {
	return r.Exception | r.CFV | r.Mem | r.Register
}

// ClassOf resolves the symptom class of one result bit using the same
// precedence order the dynamic classifier applies.
func (r *InstReport) ClassOf(bit uint) Symptom {
	m := uint64(1) << bit
	switch {
	case r.Exception&m != 0:
		return SymException
	case r.CFV&m != 0:
		return SymCFV
	case r.Mem&m != 0:
		return SymMem
	case r.Register&m != 0:
		return SymRegister
	}
	return SymMasked
}

// Report is the static vulnerability analysis of one program.
type Report struct {
	Program string
	Insts   []InstReport
}

// targets returns the instructions the injection model samples: those with a
// real (non-zero) destination register, weighted by execution count.
func (rp *Report) targets() []*InstReport {
	var out []*InstReport
	for i := range rp.Insts {
		r := &rp.Insts[i]
		if r.HasDest && r.Dest != isa.RegZero && r.Weight > 0 {
			out = append(out, r)
		}
	}
	return out
}

func wordBits(low32 bool) uint {
	if low32 {
		return 32
	}
	return 64
}

func maskFor(low32 bool) uint64 {
	if low32 {
		return 0xFFFF_FFFF
	}
	return ^uint64(0)
}

// MaskedFraction predicts the fraction of single-bit faults the program
// masks: flips of un-ACE result bits, weighted exactly like the dynamic
// campaign samples (uniform over dynamic instructions with a destination,
// uniform over the 64 — or low 32 — bits of the result).
func (rp *Report) MaskedFraction(low32 bool) float64 {
	bits := wordBits(low32)
	wmask := maskFor(low32)
	var dead, total float64
	for _, r := range rp.targets() {
		w := float64(r.Weight)
		ace := r.ACEMask() & wmask
		dead += w * float64(bits-uint(popcount(ace)))
		total += w * float64(bits)
	}
	if total == 0 {
		return 0
	}
	return dead / total
}

// SymptomFractions predicts, per symptom class, the fraction of single-bit
// faults resolving to that class (masked included), using the dynamic
// classifier's precedence to resolve bits live in several classes.
func (rp *Report) SymptomFractions(low32 bool) map[Symptom]float64 {
	bits := wordBits(low32)
	wmask := maskFor(low32)
	counts := make(map[Symptom]float64)
	var total float64
	for _, r := range rp.targets() {
		w := float64(r.Weight)
		exc := r.Exception & wmask
		cfv := r.CFV & wmask &^ exc
		memb := r.Mem & wmask &^ (exc | cfv)
		reg := r.Register & wmask &^ (exc | cfv | memb)
		live := exc | cfv | memb | reg
		counts[SymException] += w * float64(popcount(exc))
		counts[SymCFV] += w * float64(popcount(cfv))
		counts[SymMem] += w * float64(popcount(memb))
		counts[SymRegister] += w * float64(popcount(reg))
		counts[SymMasked] += w * float64(bits-uint(popcount(live)))
		total += w * float64(bits)
	}
	if total == 0 {
		return counts
	}
	for k := range counts {
		counts[k] /= total
	}
	return counts
}

// RegisterAVF is the static AVF of one architectural register: the weighted
// fraction of its written bits that are ACE.
type RegisterAVF struct {
	Reg    isa.Reg
	AVF    float64
	Weight uint64 // total dynamic writes
}

// PerRegisterAVF aggregates ACE fractions by destination register, sorted by
// descending AVF (ties by register number).
func (rp *Report) PerRegisterAVF(low32 bool) []RegisterAVF {
	bits := wordBits(low32)
	wmask := maskFor(low32)
	type acc struct {
		ace, total float64
		weight     uint64
	}
	accs := make(map[isa.Reg]*acc)
	for _, r := range rp.targets() {
		a := accs[r.Dest]
		if a == nil {
			a = &acc{}
			accs[r.Dest] = a
		}
		w := float64(r.Weight)
		a.ace += w * float64(popcount(r.ACEMask()&wmask))
		a.total += w * float64(bits)
		a.weight += r.Weight
	}
	out := make([]RegisterAVF, 0, len(accs))
	for reg, a := range accs {
		out = append(out, RegisterAVF{Reg: reg, AVF: a.ace / a.total, Weight: a.weight})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].AVF != out[j].AVF {
			return out[i].AVF > out[j].AVF
		}
		return out[i].Reg < out[j].Reg
	})
	return out
}

// MeanLatency returns the weighted mean static latency bound, in
// instructions, over ACE bits only.
func (rp *Report) MeanLatency(low32 bool) float64 {
	wmask := maskFor(low32)
	var sum, n float64
	for _, r := range rp.targets() {
		ace := r.ACEMask() & wmask
		// Distances near the saturation ceiling come from boundary facts
		// (program exit), not from a reachable symptom; exclude them.
		if ace == 0 || r.Latency >= maxDist/2 {
			continue
		}
		w := float64(r.Weight) * float64(popcount(ace))
		sum += w * float64(r.Latency)
		n += w
	}
	if n == 0 {
		return 0
	}
	return sum / n
}

// Render formats the report as a human-readable summary: program-level
// symptom distribution, the most vulnerable registers, and the hottest
// unprotected instructions.
func (rp *Report) Render(low32 bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "static vulnerability report: %s\n", rp.Program)
	fmt.Fprintf(&b, "  predicted masked fraction: %.1f%%\n", rp.MaskedFraction(low32)*100)
	fr := rp.SymptomFractions(low32)
	fmt.Fprintf(&b, "  predicted symptom distribution:\n")
	for _, s := range []Symptom{SymException, SymCFV, SymMem, SymRegister, SymMasked} {
		fmt.Fprintf(&b, "    %-12s %6.2f%%\n", s, fr[s]*100)
	}
	if lat := rp.MeanLatency(low32); lat > 0 {
		fmt.Fprintf(&b, "  mean static latency bound: %.0f instructions\n", lat)
	}
	fmt.Fprintf(&b, "  per-register AVF (top 8):\n")
	for i, ra := range rp.PerRegisterAVF(low32) {
		if i >= 8 {
			break
		}
		fmt.Fprintf(&b, "    r%-3d AVF %5.1f%%  (writes %d)\n", ra.Reg, ra.AVF*100, ra.Weight)
	}
	return b.String()
}

// serializedReport fixes the canonical field order of Serialize. Everything
// is a slice in deterministic order — no map touches the encoder.
type serializedReport struct {
	Program        string            `json:"program"`
	MaskedFraction float64           `json:"masked_fraction"`
	Symptoms       []symptomFraction `json:"symptom_fractions"`
	MeanLatency    float64           `json:"mean_latency"`
	PerRegisterAVF []serializedAVF   `json:"per_register_avf"`
	Insts          []serializedInst  `json:"insts"`
}

type symptomFraction struct {
	Symptom  string  `json:"symptom"`
	Fraction float64 `json:"fraction"`
}

type serializedAVF struct {
	Reg    uint8   `json:"reg"`
	AVF    float64 `json:"avf"`
	Weight uint64  `json:"weight"`
}

type serializedInst struct {
	Index     int    `json:"index"`
	PC        uint64 `json:"pc"`
	Dest      uint8  `json:"dest"`
	HasDest   bool   `json:"has_dest"`
	Weight    uint64 `json:"weight"`
	Exception uint64 `json:"exception_mask"`
	CFV       uint64 `json:"cfv_mask"`
	Mem       uint64 `json:"mem_mask"`
	Register  uint64 `json:"register_mask"`
	Latency   uint32 `json:"latency"`
}

// Serialize renders the report as canonical JSON: fixed field order,
// instructions in index order, symptom fractions in classifier precedence
// order. The output is byte-identical across repeated analyses of the same
// program — downstream consumers (protection-policy derivation, report
// diffing in CI) depend on that, and a regression test enforces it.
func (rp *Report) Serialize(low32 bool) ([]byte, error) {
	fr := rp.SymptomFractions(low32)
	sr := serializedReport{
		Program:        rp.Program,
		MaskedFraction: rp.MaskedFraction(low32),
		MeanLatency:    rp.MeanLatency(low32),
	}
	for _, s := range []Symptom{SymException, SymCFV, SymMem, SymRegister, SymMasked} {
		sr.Symptoms = append(sr.Symptoms, symptomFraction{Symptom: s.String(), Fraction: fr[s]})
	}
	for _, ra := range rp.PerRegisterAVF(low32) {
		sr.PerRegisterAVF = append(sr.PerRegisterAVF, serializedAVF{Reg: uint8(ra.Reg), AVF: ra.AVF, Weight: ra.Weight})
	}
	for i := range rp.Insts {
		r := &rp.Insts[i]
		sr.Insts = append(sr.Insts, serializedInst{
			Index:     r.Index,
			PC:        r.PC,
			Dest:      uint8(r.Dest),
			HasDest:   r.HasDest,
			Weight:    r.Weight,
			Exception: r.Exception,
			CFV:       r.CFV,
			Mem:       r.Mem,
			Register:  r.Register,
			Latency:   r.Latency,
		})
	}
	return json.MarshalIndent(&sr, "", "  ")
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
