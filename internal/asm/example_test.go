package asm_test

import (
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/asm"
)

// Assemble a small program, run it on the architectural simulator, and read
// a register back.
func ExampleAssemble() {
	prog, err := asm.Assemble("triangle", `
		.imm r1 10        ; n
	loop:
		addq r2, r1, r2   ; sum += n
		subq r1, #1, r1
		bgt  r1, loop
		halt
	`)
	if err != nil {
		log.Fatal(err)
	}
	m, err := prog.NewMemory()
	if err != nil {
		log.Fatal(err)
	}
	sim := arch.New(m, prog.Entry)
	if _, _, err := sim.Run(1000); err != nil {
		log.Fatal(err)
	}
	fmt.Println("sum(1..10) =", sim.Regs[2])
	// Output: sum(1..10) = 55
}
