package staticvuln

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/isa"
	"repro/internal/workload"
)

// Profile runs the program fault-free on the architectural simulator and
// returns per-static-instruction sampling weights matching the injection
// campaign's point model: points land uniformly on dynamic instructions and
// walk forward to the next instruction that writes a real register, so every
// store, branch and zero-dest instruction donates its sampling mass to the
// register-writing instruction that follows it dynamically. skip
// instructions of warm-up are discarded before count instructions are
// tallied.
func Profile(p *workload.Program, skip, count uint64) ([]uint64, error) {
	m, err := p.NewMemory()
	if err != nil {
		return nil, fmt.Errorf("staticvuln: profile: %w", err)
	}
	sim := arch.New(m, p.Entry)
	weights := make([]uint64, len(p.Code))
	limit := p.CodeBase + uint64(len(p.Code))*isa.InstBytes
	pending := uint64(0)
	for i := uint64(0); i < skip+count; i++ {
		pc := sim.PC
		ev := sim.Step()
		if ev.Exception != arch.ExcNone {
			return nil, fmt.Errorf("staticvuln: profile: exception %v at pc=%#x", ev.Exception, pc)
		}
		if ev.Halted {
			break
		}
		if i < skip {
			continue
		}
		pending++
		if ev.DestValid && ev.Dest != isa.RegZero && pc >= p.CodeBase && pc < limit {
			weights[(pc-p.CodeBase)/isa.InstBytes] += pending
			pending = 0
		}
	}
	return weights, nil
}

// staticWeights estimates execution counts without running the program:
// geometric growth in loop depth, zero for unreachable blocks. Used when no
// profile is supplied and profiling fails.
func staticWeights(g *cfg, reach []bool) []uint64 {
	w := make([]uint64, len(g.insts))
	for b := range g.blocks {
		if !reach[b] {
			continue
		}
		bw := uint64(1)
		for d := 0; d < g.loopDepth[b] && d < 16; d++ {
			bw *= 8
		}
		for i := g.blocks[b].start; i < g.blocks[b].end; i++ {
			w[i] = bw
		}
	}
	return w
}
