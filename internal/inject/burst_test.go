package inject

import (
	"testing"

	"repro/internal/workload"
)

func TestBurstFaultsRaiseFailureRate(t *testing.T) {
	run := func(burst int) float64 {
		cfg := smallUArch(workload.Gzip)
		cfg.TrialsPerPoint = 60
		cfg.BurstBits = burst
		r, err := RunUArch(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return RawFailureRate(r.Trials)
	}
	single := run(1)
	quad := run(4)
	t.Logf("failure rate: 1-bit=%.3f 4-bit burst=%.3f", single, quad)
	// Wider strikes can only corrupt more state; with matched sampling
	// the burst rate must not be materially lower.
	if quad < single-0.02 {
		t.Errorf("4-bit burst failure rate %.3f below single-bit %.3f", quad, single)
	}
}

func TestBurstClipsAtElementEdge(t *testing.T) {
	// A large burst must not panic or flip beyond element boundaries;
	// determinism across runs guards against hidden out-of-range writes.
	cfg := smallUArch(workload.Gzip)
	cfg.Points = 3
	cfg.TrialsPerPoint = 20
	cfg.BurstBits = 64
	a, err := RunUArch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunUArch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Trials {
		if a.Trials[i] != b.Trials[i] {
			t.Fatalf("burst campaign not deterministic at trial %d", i)
		}
	}
}
