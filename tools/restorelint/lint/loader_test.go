package lint

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module on disk and returns its root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, src := range files {
		full := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// otherGOOS returns a GOOS that is not the host's, for filename-constraint
// fixtures that must be excluded.
func otherGOOS() string {
	if runtime.GOOS == "windows" {
		return "linux"
	}
	return "windows"
}

// broken is file content that fails type-checking if the loader ever parses
// it: every exclusion test plants it in a file that go build would skip, so
// a loader bug surfaces as a loud Load error rather than a silent pass.
const broken = "package a\n\nvar x = definitelyUndefined\n"

// TestLoaderSkipsExcludedFiles pins the loader's file-selection rules to
// `go build`'s: _test.go files, _/.-prefixed files, files with a foreign
// GOOS/GOARCH filename suffix, and files excluded by //go:build or legacy
// // +build constraints never reach the type checker.
func TestLoaderSkipsExcludedFiles(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":                        "module lintedge\n\ngo 1.24\n",
		"a/a.go":                        "package a\n\n// Kept returns a constant.\nfunc Kept() int { return 1 }\n",
		"a/a_test.go":                   broken,
		"a/_draft.go":                   broken,
		"a/.hidden.go":                  broken,
		"a/port_" + otherGOOS() + ".go": broken,
		"a/tagged.go":                   "//go:build neverbuildme\n\n" + broken,
		"a/legacy.go":                   "// +build neverbuildme\n\n" + broken,
		"a/README.md":                   "not Go at all",
		// A satisfied constraint must NOT be excluded: go1.1 holds on every
		// toolchain this repo supports, and the host GOOS always matches.
		"a/kepttag.go": "//go:build go1.1 && " + runtime.GOOS + "\n\npackage a\n\n// AlsoKept returns a constant.\nfunc AlsoKept() int { return 2 }\n",
	})
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.Load(filepath.Join(root, "a"))
	if err != nil {
		t.Fatalf("Load: %v (an excluded file leaked into the type checker?)", err)
	}
	if len(pkg.Files) != 2 {
		t.Fatalf("loaded %d files, want 2 (a.go, kepttag.go)", len(pkg.Files))
	}
	for _, name := range []string{"Kept", "AlsoKept"} {
		if pkg.Types.Scope().Lookup(name) == nil {
			t.Errorf("exported func %s missing from the checked package", name)
		}
	}
}

// TestLoaderAllFilesExcluded pins the diagnostic when build constraints
// exclude every file in a directory.
func TestLoaderAllFilesExcluded(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":      "module lintedge\n\ngo 1.24\n",
		"a/tagged.go": "//go:build neverbuildme\n\npackage a\n",
	})
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loader.Load(filepath.Join(root, "a")); err == nil ||
		!strings.Contains(err.Error(), "excluded by build constraints") {
		t.Fatalf("Load = %v, want build-constraint error", err)
	}
}

// TestDataflowCrossPackageUnexported pins that call-graph summaries follow
// module-local calls through unexported identifiers in other packages: a
// hot path in package b reaching an allocation inside package a's
// unexported helper must be reported, even though the helper is invisible
// to b's scope.
func TestDataflowCrossPackageUnexported(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module lintedge\n\ngo 1.24\n",
		"a/a.go": `package a

// grow is unexported: only reachable through Exported's summary.
func grow(n int) []int { return make([]int, n) }

// Exported wraps the unexported allocator.
func Exported(n int) []int { return grow(n) }
`,
		"b/b.go": `package b

import "lintedge/a"

// Hot is the analysis root.
//
//restorelint:hotpath
func Hot(n int) []int { return a.Exported(n) }
`,
	})
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.Load(filepath.Join(root, "b"))
	if err != nil {
		t.Fatal(err)
	}
	df := NewDataflow(pkg)
	roots := df.HotPaths(pkg)
	if len(roots) != 1 || roots[0].Fn.Name() != "Hot" {
		t.Fatalf("HotPaths = %v, want [Hot]", roots)
	}
	findings := df.TransitiveAllocs(roots[0].Fn)
	if len(findings) != 1 {
		t.Fatalf("TransitiveAllocs = %d findings, want 1", len(findings))
	}
	f := findings[0]
	if f.In.Name() != "grow" {
		t.Errorf("allocation attributed to %s, want a.grow", f.In.Name())
	}
	chain := ChainString(f.Chain)
	for _, fn := range []string{"Hot", "Exported", "grow"} {
		if !strings.Contains(chain, fn) {
			t.Errorf("chain %q missing %s", chain, fn)
		}
	}
}
