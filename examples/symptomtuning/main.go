// Symptomtuning: evaluate candidate soft-error symptoms on the paper's
// three metrics (Section 3.3):
//
//  1. how often failure-causing errors generate the symptom (coverage),
//  2. the typical error-to-symptom propagation latency, and
//  3. how often the symptom fires in the ABSENCE of an error — the
//     false-positive rate that turns into rollback overhead.
//
// The paper's worked example: data-cache misses look attractive on (1) and
// (2) but fail (3) badly, because misses are routine events. This example
// quantifies all three for four candidates: ISA exceptions, watchdog
// deadlock, JRS high-confidence mispredictions, and D-cache misses.
//
// Run with: go run ./examples/symptomtuning
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/inject"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	bench := workload.Vortex

	// Metrics 1 & 2 come from a fault-injection campaign.
	fmt.Printf("campaign: injecting faults into the pipeline running %s...\n", bench)
	res, err := inject.RunUArch(inject.UArchConfig{
		Bench: bench, Seed: 11, Points: 10, TrialsPerPoint: 40,
	})
	if err != nil {
		return err
	}

	var failing []inject.UArchTrial
	for _, tr := range res.Trials {
		if tr.Failing() {
			failing = append(failing, tr)
		}
	}
	fmt.Printf("%d trials, %d failing\n\n", len(res.Trials), len(failing))

	type candidate struct {
		name    string
		latency func(inject.UArchTrial) uint64
	}
	candidates := []candidate{
		{"exception", func(t inject.UArchTrial) uint64 { return t.ExcLat }},
		{"deadlock", func(t inject.UArchTrial) uint64 { return t.DeadlockLat }},
		{"hc-mispredict", func(t inject.UArchTrial) uint64 { return t.HCMispLat }},
		{"any-mispredict", func(t inject.UArchTrial) uint64 { return t.AnyMispLat }},
	}

	// Metric 3: symptom frequency on a fault-free run.
	prog := workload.MustGenerate(bench, workload.Config{Seed: 11})
	m, err := prog.NewMemory()
	if err != nil {
		return err
	}
	pipe, err := pipeline.New(pipeline.DefaultConfig(), m, prog.Entry)
	if err != nil {
		return err
	}
	pipe.RunRetired(200_000, 4_000_000)
	s := pipe.Stats()
	perKinsn := func(n uint64) float64 { return 1000 * float64(n) / float64(s.Retired) }
	errorFree := map[string]float64{
		"exception":      0, // golden runs never fault
		"deadlock":       0, // or deadlock
		"hc-mispredict":  perKinsn(s.HCMispredicts),
		"any-mispredict": perKinsn(s.Mispredicts),
		"dcache-miss":    perKinsn(s.DCacheMisses),
	}

	fmt.Printf("%-16s %12s %14s %18s\n", "symptom", "coverage", "median latency", "false pos / kinsn")
	for _, c := range candidates {
		covered, lats := 0, []uint64(nil)
		for _, tr := range failing {
			if lat := c.latency(tr); lat != inject.Never {
				covered++
				lats = append(lats, lat)
			}
		}
		med := "-"
		if len(lats) > 0 {
			sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
			med = fmt.Sprintf("%d insts", lats[len(lats)/2])
		}
		cov := 0.0
		if len(failing) > 0 {
			cov = float64(covered) / float64(len(failing))
		}
		fmt.Printf("%-16s %11.1f%% %14s %18.2f\n", c.name, 100*cov, med, errorFree[c.name])
	}
	fmt.Printf("%-16s %12s %14s %18.2f\n", "dcache-miss", "(high)", "(short)", errorFree["dcache-miss"])

	fmt.Println("\nReading the table with the paper's Section 3.3 criteria:")
	fmt.Println(" - exceptions: good coverage, short latency, zero false positives -> ideal")
	fmt.Println(" - hc-mispredict: less coverage, near-zero false positives -> cheap addition")
	fmt.Println(" - any-mispredict: more coverage but fires constantly -> needs confidence gating")
	fmt.Printf(" - dcache-miss: fires %.0f times per kinsn on a CLEAN run -> rollback storms;\n",
		errorFree["dcache-miss"])
	fmt.Println("   exactly why the paper rejects it as a detection strategy")
	return nil
}
