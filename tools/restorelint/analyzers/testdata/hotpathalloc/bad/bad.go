// Package fixture exercises every hotpathalloc diagnostic: each allocation
// fact kind inside an annotated function, a transitive allocation reached
// through a helper, one reached through a devirtualized interface call, an
// assumed-allocating stdlib call, and a sanction missing its justification.
package fixture

import "fmt"

//restorelint:hotpath
func hotMake() []int {
	return make([]int, 8) // want "allocation in hot path: make allocates"
}

//restorelint:hotpath
func hotTransitive() int {
	return helper()
}

func helper() int {
	s := new(int) // want "allocation in hot path: new allocates"
	return *s
}

//restorelint:hotpath
func hotAppend(xs []int) []int {
	return append(xs, 1) // want "append may grow"
}

//restorelint:hotpath
func hotClosure() func() int {
	x := 0
	return func() int { x++; return x } // want "func literal allocates a closure"
}

func sink(v interface{}) {}

//restorelint:hotpath
func hotBox(n int) {
	sink(n) // want "passing int as interface parameter boxes"
}

//restorelint:hotpath
func hotConv(s string) []byte {
	return []byte(s) // want "copies its contents"
}

//restorelint:hotpath
func hotSliceLit() int {
	xs := []int{1, 2, 3} // want "slice literal allocates its backing array"
	return xs[0]
}

type node struct{ v int }

//restorelint:hotpath
func hotEscape() *node {
	return &node{v: 1} // want "address-taken composite literal escapes"
}

//restorelint:hotpath
func hotFmt(n int) string {
	return fmt.Sprintf("%d", n) // want "passing int as interface parameter boxes" "call to fmt.Sprintf is assumed to allocate"
}

type getter interface{ Get() []int }

type impl struct{}

func (impl) Get() []int {
	return make([]int, 1) // want "allocation in hot path: make allocates"
}

//restorelint:hotpath
func hotIface(g getter) []int {
	return g.Get()
}

//restorelint:hotpath
func hotSanctionNoReason() []int {
	//restorelint:allowalloc // want "allowalloc directive without a justification"
	return make([]int, 4)
}
