package predictor

// BTB is a set-associative branch target buffer. The front end uses it to
// obtain targets for predicted-taken branches and indirect jumps before the
// instruction is even decoded.
type BTB struct {
	ways    int
	sets    uint64
	entries []btbEntry // sets*ways, LRU within a set
}

type btbEntry struct {
	valid  bool
	tag    uint64
	target uint64
	lru    uint32
}

// NewBTB returns a BTB with 2^setBits sets of the given associativity.
func NewBTB(setBits, ways int) *BTB {
	sets := uint64(1) << setBits
	return &BTB{ways: ways, sets: sets, entries: make([]btbEntry, int(sets)*ways)}
}

func (b *BTB) set(pc uint64) []btbEntry {
	idx := (pc >> 2) & (b.sets - 1)
	return b.entries[int(idx)*b.ways : int(idx+1)*b.ways]
}

// Lookup returns the predicted target for pc, if any.
func (b *BTB) Lookup(pc uint64) (target uint64, hit bool) {
	set := b.set(pc)
	for i := range set {
		if set[i].valid && set[i].tag == pc {
			set[i].lru = 0
			for j := range set {
				if j != i && set[j].valid {
					set[j].lru++
				}
			}
			return set[i].target, true
		}
	}
	return 0, false
}

// Update installs or refreshes the target for pc, evicting the LRU way.
func (b *BTB) Update(pc, target uint64) {
	set := b.set(pc)
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == pc {
			victim = i
			break
		}
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru > set[victim].lru {
			victim = i
		}
	}
	set[victim] = btbEntry{valid: true, tag: pc, target: target}
	for j := range set {
		if j != victim && set[j].valid {
			set[j].lru++
		}
	}
}

// RAS is the return-address stack. Pushes wrap around when full, like real
// hardware, so deep recursion degrades gracefully rather than overflowing.
type RAS struct {
	stack []uint64
	top   int
	depth int
}

// NewRAS returns a return-address stack with the given capacity.
func NewRAS(capacity int) *RAS {
	return &RAS{stack: make([]uint64, capacity)}
}

// Push records a return address on a call.
func (r *RAS) Push(addr uint64) {
	r.top = (r.top + 1) % len(r.stack)
	r.stack[r.top] = addr
	if r.depth < len(r.stack) {
		r.depth++
	}
}

// Pop predicts the target of a return. Popping an empty stack returns 0 and
// no-hit.
func (r *RAS) Pop() (uint64, bool) {
	if r.depth == 0 {
		return 0, false
	}
	addr := r.stack[r.top]
	r.top = (r.top - 1 + len(r.stack)) % len(r.stack)
	r.depth--
	return addr, true
}

// Depth returns the number of live entries.
func (r *RAS) Depth() int { return r.depth }
