// Package fixture holds the durable-IO shapes the analyzer must accept:
// write-sync-rename publishes (directly and through a named local), the
// buffered-writer flush pattern on a struct field, and a record scan that
// checksums before trusting.
package fixture

import (
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

type Record struct {
	Slot    int
	Payload []byte
}

func publish(dir string, data []byte) error {
	tmp, err := os.CreateTemp(dir, "m.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(dir, "manifest"))
}

func publishViaLocal(dir string, data []byte) error {
	tmp, err := os.CreateTemp(dir, "t.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	name := tmp.Name()
	return os.Rename(name, filepath.Join(dir, "final"))
}

type writer struct {
	f   *os.File
	buf []byte
}

func (w *writer) flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	if _, err := w.f.Write(w.buf); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.buf = w.buf[:0]
	return nil
}

func scan(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []Record
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			return out, nil
		}
		payload := make([]byte, 16)
		if _, err := io.ReadFull(f, payload); err != nil {
			return out, nil
		}
		if crc32.ChecksumIEEE(payload) != uint32(hdr[0]) {
			return nil, os.ErrInvalid
		}
		out = append(out, Record{Slot: int(hdr[1]), Payload: payload})
	}
}

// writeFrames mirrors the ckptio container write path: a header plus
// per-frame payloads written to a temp file in a loop, fsynced, closed,
// and atomically renamed into place.
func writeFrames(path string, header []byte, frames [][]byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(header); err != nil {
		tmp.Close()
		return err
	}
	for _, fr := range frames {
		if _, err := tmp.Write(fr); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// scanSegments mirrors the compressed-journal read path: each segment's CRC
// covers its header and compressed body and is verified before anything is
// decompressed or trusted.
func scanSegments(f *os.File) ([]Record, error) {
	var out []Record
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			return out, nil
		}
		body := make([]byte, 32)
		if _, err := io.ReadFull(f, body); err != nil {
			return out, nil
		}
		crc := crc32.NewIEEE()
		crc.Write(hdr[:])
		crc.Write(body)
		if crc.Sum32() != 7 {
			return nil, os.ErrInvalid
		}
		out = append(out, Record{Slot: int(hdr[0]), Payload: body})
	}
}
