// Package predictor implements the control-flow prediction hardware the
// ReStore front end leverages: direction predictors (bimodal, gshare, and
// the McFarling combining predictor the paper cites [18]), a branch target
// buffer, a return-address stack, and the JRS resetting-counter confidence
// estimator [12] that gates which mispredictions count as soft-error
// symptoms.
//
// Predictor tables are deliberately excluded from the fault-injection state
// space (paper Section 4.2: corrupt predictor entries cannot cause failure,
// only extra mispredictions), so this package keeps its state in ordinary Go
// structures rather than the pipeline's enumerable StateSpace.
package predictor

// counter2 is a saturating 2-bit counter; values 2 and 3 predict taken.
type counter2 = uint8

func bump(c counter2, taken bool) counter2 {
	if taken {
		if c < 3 {
			return c + 1
		}
		return 3
	}
	if c > 0 {
		return c - 1
	}
	return 0
}

// Bimodal is a PC-indexed table of 2-bit counters.
type Bimodal struct {
	table []counter2
	mask  uint64
}

// NewBimodal returns a bimodal predictor with 2^bits entries.
func NewBimodal(bits int) *Bimodal {
	n := 1 << bits
	t := make([]counter2, n)
	for i := range t {
		t[i] = 2 // weakly taken: loops predict well from cold
	}
	return &Bimodal{table: t, mask: uint64(n - 1)}
}

func (b *Bimodal) index(pc uint64) uint64 { return (pc >> 2) & b.mask }

// Predict returns the predicted direction for the branch at pc.
func (b *Bimodal) Predict(pc uint64) bool { return b.table[b.index(pc)] >= 2 }

// Update trains the predictor with the resolved direction.
func (b *Bimodal) Update(pc uint64, taken bool) {
	i := b.index(pc)
	b.table[i] = bump(b.table[i], taken)
}

// Gshare XORs global history into the table index.
type Gshare struct {
	table    []counter2
	mask     uint64
	hist     uint64
	histBits uint
}

// NewGshare returns a gshare predictor with 2^bits entries and histBits of
// global history.
func NewGshare(bits int, histBits uint) *Gshare {
	n := 1 << bits
	t := make([]counter2, n)
	for i := range t {
		t[i] = 2
	}
	return &Gshare{table: t, mask: uint64(n - 1), histBits: histBits}
}

func (g *Gshare) index(pc uint64) uint64 {
	return ((pc >> 2) ^ g.hist) & g.mask
}

// Predict returns the predicted direction for the branch at pc.
func (g *Gshare) Predict(pc uint64) bool { return g.table[g.index(pc)] >= 2 }

// Update trains the counter and shifts the resolved direction into the
// global history register.
func (g *Gshare) Update(pc uint64, taken bool) {
	i := g.index(pc)
	g.table[i] = bump(g.table[i], taken)
	g.hist <<= 1
	if taken {
		g.hist |= 1
	}
	g.hist &= (1 << g.histBits) - 1
}

// History exposes the current global history (used by confidence indexing).
func (g *Gshare) History() uint64 { return g.hist }

// PredictH predicts using an externally managed history register. Pipelines
// that maintain speculative fetch-time history (repaired on flushes) use
// this form so that prediction and training index the same table entry.
func (g *Gshare) PredictH(pc, hist uint64) bool {
	return g.table[((pc>>2)^hist)&g.mask] >= 2
}

// UpdateH trains the counter the PredictH call with the same history used.
// The internal history register is not touched.
func (g *Gshare) UpdateH(pc uint64, taken bool, hist uint64) {
	i := ((pc >> 2) ^ hist) & g.mask
	g.table[i] = bump(g.table[i], taken)
}

// Combined is McFarling's combining predictor: a chooser table picks between
// bimodal and gshare per branch.
type Combined struct {
	bimodal *Bimodal
	gshare  *Gshare
	chooser []counter2 // >=2 selects gshare
	mask    uint64
}

// NewCombined returns a combining predictor; each component has 2^bits
// entries.
func NewCombined(bits int, histBits uint) *Combined {
	n := 1 << bits
	ch := make([]counter2, n)
	for i := range ch {
		ch[i] = 2
	}
	return &Combined{
		bimodal: NewBimodal(bits),
		gshare:  NewGshare(bits, histBits),
		chooser: ch,
		mask:    uint64(n - 1),
	}
}

// Predict returns the chosen component's prediction.
func (c *Combined) Predict(pc uint64) bool {
	if c.chooser[(pc>>2)&c.mask] >= 2 {
		return c.gshare.Predict(pc)
	}
	return c.bimodal.Predict(pc)
}

// Update trains both components and moves the chooser toward whichever was
// correct.
func (c *Combined) Update(pc uint64, taken bool) {
	bp := c.bimodal.Predict(pc)
	gp := c.gshare.Predict(pc)
	i := (pc >> 2) & c.mask
	if gp == taken && bp != taken {
		c.chooser[i] = bump(c.chooser[i], true)
	} else if bp == taken && gp != taken {
		c.chooser[i] = bump(c.chooser[i], false)
	}
	c.bimodal.Update(pc, taken)
	c.gshare.Update(pc, taken)
}

// History exposes the gshare component's global history.
func (c *Combined) History() uint64 { return c.gshare.History() }

// PredictH predicts with an externally managed history register.
func (c *Combined) PredictH(pc, hist uint64) bool {
	if c.chooser[(pc>>2)&c.mask] >= 2 {
		return c.gshare.PredictH(pc, hist)
	}
	return c.bimodal.Predict(pc)
}

// UpdateH trains both components and the chooser against the history the
// prediction was made with.
func (c *Combined) UpdateH(pc uint64, taken bool, hist uint64) {
	bp := c.bimodal.Predict(pc)
	gp := c.gshare.PredictH(pc, hist)
	i := (pc >> 2) & c.mask
	if gp == taken && bp != taken {
		c.chooser[i] = bump(c.chooser[i], true)
	} else if bp == taken && gp != taken {
		c.chooser[i] = bump(c.chooser[i], false)
	}
	c.bimodal.Update(pc, taken)
	c.gshare.UpdateH(pc, taken, hist)
}

// DirectionPredictor is the interface the pipeline front end consumes.
type DirectionPredictor interface {
	Predict(pc uint64) bool
	Update(pc uint64, taken bool)
}

// Compile-time interface checks.
var (
	_ DirectionPredictor = (*Bimodal)(nil)
	_ DirectionPredictor = (*Gshare)(nil)
	_ DirectionPredictor = (*Combined)(nil)
)
