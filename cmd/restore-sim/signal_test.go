package main

import (
	"os"
	"syscall"
	"testing"
	"time"
)

// The interruption protocol is two-level: the first SIGINT/SIGTERM drains
// (stop channel → campaigns flush and return ErrInterrupted), a second one
// forces an immediate exit. The original handler read exactly one signal and
// ignored every later one, so a user hammering ctrl-C still waited for the
// full drain — the regression these tests pin down.

func waitClosed(t *testing.T, ch <-chan struct{}, what string) {
	t.Helper()
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatalf("%s did not happen", what)
	}
}

func TestWatchInterruptsSecondSignalForcesExit(t *testing.T) {
	sigc := make(chan os.Signal, 2)
	drained := make(chan struct{})
	forced := make(chan struct{})
	returned := make(chan struct{})
	go func() {
		watchInterrupts(sigc, func() { close(drained) }, func() { close(forced) })
		close(returned)
	}()

	sigc <- syscall.SIGTERM
	waitClosed(t, drained, "first signal did not drain")
	select {
	case <-forced:
		t.Fatal("a single signal forced an exit")
	case <-time.After(50 * time.Millisecond):
	}

	sigc <- syscall.SIGINT
	waitClosed(t, forced, "second signal did not force an exit")
	waitClosed(t, returned, "watcher did not return")
}

func TestWatchInterruptsStopsOnClosedChannel(t *testing.T) {
	// signal.Stop closes nothing, but run() tears the watcher down by
	// returning; a closed channel (the test stand-in) must fire neither
	// callback — the campaign completed normally.
	sigc := make(chan os.Signal)
	returned := make(chan struct{})
	var drains, forces int
	go func() {
		watchInterrupts(sigc, func() { drains++ }, func() { forces++ })
		close(returned)
	}()
	close(sigc)
	waitClosed(t, returned, "watcher did not return on channel close")
	if drains != 0 || forces != 0 {
		t.Fatalf("closed channel invoked callbacks: %d drains, %d forces", drains, forces)
	}
}

func TestWatchInterruptsCloseAfterDrain(t *testing.T) {
	// First signal, then a clean shutdown (drain finished before any second
	// signal): the watcher must return without forcing.
	sigc := make(chan os.Signal, 2)
	drained := make(chan struct{})
	returned := make(chan struct{})
	go func() {
		watchInterrupts(sigc, func() { close(drained) }, func() {
			t.Error("force fired without a second signal")
		})
		close(returned)
	}()
	sigc <- syscall.SIGTERM
	waitClosed(t, drained, "first signal did not drain")
	close(sigc)
	waitClosed(t, returned, "watcher did not return")
}

func TestForceExitFlushesJournalsAndExits130(t *testing.T) {
	old := exitFn
	defer func() { exitFn = old }()
	code := -1
	exitFn = func(c int) { code = c }
	forceExit()
	if code != 130 {
		t.Fatalf("forceExit exited with %d, want 130", code)
	}
}
