package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/campaignio"
)

// The CLI's run() is exercised end-to-end with tiny campaigns; output goes
// to stdout, so these tests assert behaviour through error values and flag
// handling.

func tinyArgs(experiment string) []string {
	return []string{"-trials", "0.05", "-scale", "0.5", "-bench", "gzip", experiment}
}

func TestRunExperimentsSmoke(t *testing.T) {
	experiments := []string{
		"fig2", "fig4", "fig5", "fig6", "fig8", "summary", "compare",
		"ablate-ckpt", "vulnerability", "analyze",
		"protect", "protect-compare", "budget-sweep",
	}
	for _, exp := range experiments {
		exp := exp
		t.Run(exp, func(t *testing.T) {
			if err := run(tinyArgs(exp)); err != nil {
				t.Fatalf("%s: %v", exp, err)
			}
		})
	}
}

func TestRunFig7AndDemo(t *testing.T) {
	if err := run([]string{"-trials", "0.05", "-bench", "gzip", "fig7"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-bench", "gzip", "-interval", "200", "demo"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunPerBenchAndCSV(t *testing.T) {
	if err := run([]string{"-trials", "0.05", "-scale", "0.5", "-bench", "gzip,mcf", "-perbench", "fig4"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-trials", "0.05", "-scale", "0.5", "-bench", "gzip", "-csv", "fig2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMetricsFlag(t *testing.T) {
	dir := t.TempDir()

	prom := filepath.Join(dir, "campaign.prom")
	args := append([]string{"-metrics", prom}, tinyArgs("fig4")...)
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(prom)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"# TYPE campaign_uarch_trials_total counter", "pipeline_rob_occupancy_bucket"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("metrics file missing %q:\n%s", want, data)
		}
	}

	// The extension selects the format; .json must parse.
	jsonPath := filepath.Join(dir, "campaign.json")
	args = append([]string{"-metrics", jsonPath}, tinyArgs("fig4")...)
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Metrics []struct {
			Name string `json:"name"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("metrics JSON does not parse: %v", err)
	}
	if len(snap.Metrics) == 0 {
		t.Error("metrics JSON has no metrics")
	}

	// An unwritable path must surface as an error, not a silent run.
	args = append([]string{"-metrics", filepath.Join(dir, "no", "such", "dir.prom")}, tinyArgs("fig4")...)
	if err := run(args); err == nil || !strings.Contains(err.Error(), "metrics") {
		t.Errorf("unwritable metrics path: err = %v", err)
	}
}

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// everything fn printed.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	collected := make(chan string)
	go func() {
		b, _ := io.ReadAll(r)
		collected <- string(b)
	}()
	ferr := fn()
	w.Close()
	os.Stdout = old
	return <-collected, ferr
}

// TestRunDurableResumeMatchesOneShot interrupts a durable CLI run with
// -stop-after, resumes it, and requires the resumed run to print exactly
// what a one-shot run prints.
func TestRunDurableResumeMatchesOneShot(t *testing.T) {
	oneShot, err := captureStdout(t, func() error { return run(tinyArgs("fig4")) })
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	durable := append([]string{"-out", dir, "-stop-after", "5"}, tinyArgs("fig4")...)
	if _, err := captureStdout(t, func() error { return run(durable) }); err != nil {
		t.Fatalf("interrupted run must exit cleanly, got %v", err)
	}
	ids, err := campaignio.ListCampaigns(dir)
	if err != nil || len(ids) == 0 {
		t.Fatalf("interrupted run left no campaign directory (ids %v, err %v)", ids, err)
	}

	resumed, err := captureStdout(t, func() error {
		return run(append([]string{"-out", dir}, tinyArgs("fig4")...))
	})
	if err != nil {
		t.Fatal(err)
	}
	if resumed != oneShot {
		t.Errorf("resumed output differs from one-shot:\n--- one-shot ---\n%s--- resumed ---\n%s", oneShot, resumed)
	}
}

// TestRunShardMergeRerun splits fig2 across two shard processes, merges their
// directories, and reruns from the merged directory: the rerun must print
// exactly what a one-shot run prints, without re-running any trial.
func TestRunShardMergeRerun(t *testing.T) {
	oneShot, err := captureStdout(t, func() error { return run(tinyArgs("fig2")) })
	if err != nil {
		t.Fatal(err)
	}

	s1, s2, merged := t.TempDir(), t.TempDir(), t.TempDir()
	for i, dir := range []string{s1, s2} {
		shard := []string{"-out", dir, "-shard", []string{"1/2", "2/2"}[i]}
		out, err := captureStdout(t, func() error { return run(append(shard, tinyArgs("fig2")...)) })
		if err != nil {
			t.Fatalf("shard %d: %v", i+1, err)
		}
		if !strings.Contains(out, "shard") {
			t.Errorf("shard run printed no completion notice:\n%s", out)
		}
	}
	if _, err := captureStdout(t, func() error {
		return run([]string{"-out", merged, "merge", s1, s2})
	}); err != nil {
		t.Fatalf("merge: %v", err)
	}

	rerun, err := captureStdout(t, func() error {
		return run(append([]string{"-out", merged}, tinyArgs("fig2")...))
	})
	if err != nil {
		t.Fatal(err)
	}
	if rerun != oneShot {
		t.Errorf("merged rerun differs from one-shot:\n--- one-shot ---\n%s--- rerun ---\n%s", oneShot, rerun)
	}
}

func TestRunDurableFlagErrors(t *testing.T) {
	if err := run(append([]string{"-shard", "1/2"}, tinyArgs("fig2")...)); err == nil || !strings.Contains(err.Error(), "-out") {
		t.Errorf("-shard without -out: err = %v", err)
	}
	dir := t.TempDir()
	for _, bad := range []string{"0/2", "3/2", "2", "a/b", "1/2/3"} {
		if err := run(append([]string{"-out", dir, "-shard", bad}, tinyArgs("fig2")...)); err == nil {
			t.Errorf("-shard %q accepted", bad)
		}
	}
	args := append([]string{"-out", dir, "-shard", "1/2"}, tinyArgs("summary")...)
	if err := run(args); err == nil || !strings.Contains(err.Error(), "sharded") {
		t.Errorf("sharded summary: err = %v", err)
	}
	if err := run([]string{"merge", dir}); err == nil || !strings.Contains(err.Error(), "-out") {
		t.Errorf("merge without -out: err = %v", err)
	}
	if err := run([]string{"-out", t.TempDir(), "merge"}); err == nil {
		t.Error("merge without shard dirs accepted")
	}
	if err := run([]string{"-out", t.TempDir(), "merge", t.TempDir()}); err == nil || !strings.Contains(err.Error(), "no campaign directories") {
		t.Errorf("merge of empty root: err = %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("missing experiment accepted")
	}
	if err := run([]string{"frobnicate"}); err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("unknown experiment: %v", err)
	}
	if err := run([]string{"-bench", "quake", "fig2"}); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if err := run([]string{"-badflag", "fig2"}); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-budgets", "12,x", "-bench", "gzip", "budget-sweep"}); err == nil ||
		!strings.Contains(err.Error(), "budgets") {
		t.Errorf("malformed -budgets: %v", err)
	}
}

// TestRunGoldenImageAndInspect runs a tiny campaign with -golden-image, reruns
// it from the saved image (outputs must match byte-for-byte), and inspects the
// image with the ckpt subcommand.
func TestRunGoldenImageAndInspect(t *testing.T) {
	oneShot, err := captureStdout(t, func() error { return run(tinyArgs("fig2")) })
	if err != nil {
		t.Fatal(err)
	}

	root := t.TempDir()
	warm, err := captureStdout(t, func() error {
		return run(append([]string{"-golden-image", root}, tinyArgs("fig2")...))
	})
	if err != nil {
		t.Fatal(err)
	}
	images, err := filepath.Glob(filepath.Join(root, "*.golden"))
	if err != nil || len(images) != 1 {
		t.Fatalf("golden images = %v (err %v), want exactly 1", images, err)
	}
	restored, err := captureStdout(t, func() error {
		return run(append([]string{"-golden-image", root}, tinyArgs("fig2")...))
	})
	if err != nil {
		t.Fatal(err)
	}
	if warm != oneShot || restored != oneShot {
		t.Errorf("golden-image runs diverged from plain run:\n--- plain ---\n%s--- warm ---\n%s--- restored ---\n%s",
			oneShot, warm, restored)
	}

	out, err := captureStdout(t, func() error {
		return run([]string{"ckpt", "inspect", images[0]})
	})
	if err != nil {
		t.Fatalf("ckpt inspect: %v", err)
	}
	for _, want := range []string{"frames", "flate", "meta: vm|bench=gzip"} {
		if !strings.Contains(out, want) {
			t.Errorf("inspect output missing %q:\n%s", want, out)
		}
	}

	// Usage and open errors must surface.
	if err := run([]string{"ckpt", "inspect"}); err == nil {
		t.Error("ckpt inspect without a path accepted")
	}
	if err := run([]string{"ckpt", "frobnicate", images[0]}); err == nil {
		t.Error("unknown ckpt verb accepted")
	}
	if err := run([]string{"ckpt", "inspect", filepath.Join(root, "absent.golden")}); err == nil {
		t.Error("inspect of a missing file succeeded")
	}
}

// TestRunCompressedJournalResume interrupts a durable -compress-journal run,
// resumes it, and requires the same output as a one-shot run plus a v2
// journal on disk.
func TestRunCompressedJournalResume(t *testing.T) {
	oneShot, err := captureStdout(t, func() error { return run(tinyArgs("fig2")) })
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	durable := append([]string{"-out", dir, "-compress-journal", "-stop-after", "5"}, tinyArgs("fig2")...)
	if _, err := captureStdout(t, func() error { return run(durable) }); err != nil {
		t.Fatalf("interrupted run must exit cleanly, got %v", err)
	}
	ids, err := campaignio.ListCampaigns(dir)
	if err != nil || len(ids) != 1 {
		t.Fatalf("campaign dirs = %v (err %v)", ids, err)
	}
	hdr := make([]byte, 8)
	jf, err := os.Open(filepath.Join(dir, ids[0], campaignio.JournalName))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(jf, hdr); err != nil {
		t.Fatal(err)
	}
	jf.Close()
	if string(hdr) != "RSTJRNL2" {
		t.Fatalf("journal magic = %q, want RSTJRNL2", hdr)
	}
	resumed, err := captureStdout(t, func() error {
		return run(append([]string{"-out", dir, "-compress-journal"}, tinyArgs("fig2")...))
	})
	if err != nil {
		t.Fatal(err)
	}
	if resumed != oneShot {
		t.Errorf("compressed resumed output differs from one-shot:\n--- one-shot ---\n%s--- resumed ---\n%s", oneShot, resumed)
	}
}
