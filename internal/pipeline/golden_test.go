package pipeline

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/workload"
)

// runTo warms a fresh gzip pipeline by n cycles.
func warmPipeline(t *testing.T, cfg Config, cycles uint64) *Pipeline {
	t.Helper()
	p := newBenchPipeline(t, workload.Gzip, cfg)
	p.RunCycles(cycles)
	return p
}

// TestGoldenImageRoundTrip proves the tentpole contract at the pipeline
// level: a warmed pipeline saved to a golden image and loaded into a fresh
// pipeline is bit-identical — same state hash, same memory image, same
// stats — and stays in lockstep with the original for thousands of further
// cycles.
func TestGoldenImageRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	src := warmPipeline(t, cfg, 20_000)
	path := filepath.Join(t.TempDir(), "gzip.golden")
	meta := []byte("test|gzip|golden")
	st, err := src.WriteGoldenImage(path, meta, 4)
	if err != nil {
		t.Fatal(err)
	}
	if st.Frames < goldenFixedFrames+1 || st.StoredBytes == 0 {
		t.Fatalf("implausible stats: %+v", st)
	}

	dst := newBenchPipeline(t, workload.Gzip, cfg)
	if err := dst.LoadGoldenImage(path, meta, 4); err != nil {
		t.Fatal(err)
	}
	if got, want := dst.space.Hash(), src.space.Hash(); got != want {
		t.Fatalf("state hash after load %#x, want %#x", got, want)
	}
	if !dst.mem.Equal(src.mem) {
		addr, _ := dst.mem.FirstDifference(src.mem)
		t.Fatalf("memory differs after load (first at %#x)", addr)
	}
	if dst.Stats() != src.Stats() {
		t.Fatalf("stats differ after load:\n got %+v\nwant %+v", dst.Stats(), src.Stats())
	}
	if dst.status != src.status || dst.cycle != src.cycle {
		t.Fatalf("bookkeeping differs: status %v/%v cycle %d/%d", dst.status, src.status, dst.cycle, src.cycle)
	}
	// The restored machine must continue exactly as the original does.
	for i := 0; i < 5; i++ {
		src.RunCycles(1_000)
		dst.RunCycles(1_000)
		if src.space.Hash() != dst.space.Hash() {
			t.Fatalf("diverged within %d cycles after restore", (i+1)*1000)
		}
	}
	if !dst.mem.Equal(src.mem) {
		t.Fatal("memory diverged after restore")
	}
}

// TestGoldenImageWorkerAndModeIdentical writes the same pipeline at several
// worker counts and asserts the files are byte-identical, and that loading
// with different worker counts restores the identical state.
func TestGoldenImageWorkerAndModeIdentical(t *testing.T) {
	cfg := DefaultConfig()
	src := warmPipeline(t, cfg, 10_000)
	dir := t.TempDir()
	meta := []byte("test|gzip|workers")
	var base []byte
	for _, workers := range []int{1, 3, 8} {
		path := filepath.Join(dir, "img")
		if _, err := src.WriteGoldenImage(path, meta, workers); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = data
		} else if !bytes.Equal(base, data) {
			t.Fatalf("golden image bytes differ at workers=%d", workers)
		}
		dst := newBenchPipeline(t, workload.Gzip, cfg)
		if err := dst.LoadGoldenImage(path, meta, workers); err != nil {
			t.Fatal(err)
		}
		if dst.space.Hash() != src.space.Hash() {
			t.Fatalf("restored hash differs at workers=%d", workers)
		}
	}
}

// TestGoldenImageRefusesMismatch pins the refusal paths: wrong meta, and a
// differently configured pipeline (different state-space shape).
func TestGoldenImageRefusesMismatch(t *testing.T) {
	cfg := DefaultConfig()
	src := warmPipeline(t, cfg, 5_000)
	path := filepath.Join(t.TempDir(), "img")
	if _, err := src.WriteGoldenImage(path, []byte("meta-a"), 2); err != nil {
		t.Fatal(err)
	}
	dst := newBenchPipeline(t, workload.Gzip, cfg)
	if err := dst.LoadGoldenImage(path, []byte("meta-b"), 2); !errors.Is(err, ErrGoldenMismatch) {
		t.Fatalf("wrong meta: got %v, want ErrGoldenMismatch", err)
	}
	other := cfg
	other.Confidence = ConfidencePerfect
	dp := newBenchPipeline(t, workload.Gzip, other)
	if err := dp.LoadGoldenImage(path, []byte("meta-a"), 2); !errors.Is(err, ErrGoldenMismatch) {
		t.Fatalf("JRS-state mismatch: got %v, want ErrGoldenMismatch", err)
	}
	if got, err := GoldenMeta(path); err != nil || string(got) != "meta-a" {
		t.Fatalf("GoldenMeta = %q, %v", got, err)
	}
}
