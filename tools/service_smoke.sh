#!/bin/sh
# Campaign-service smoke test (make serve-smoke, CI campaign-service job).
#
# Proves the daemon's durability contract end to end, against the same
# binary a user runs:
#   1. a job SIGKILLed mid-campaign (daemon killed -9, job.json still says
#      running) auto-resumes on the next `restore-sim serve` and finishes
#      with merged campaign directories byte-identical to a one-shot run;
#   2. a graceful SIGTERM re-queues the running job durably and withdraws
#      the address file; the restarted daemon completes it;
#   3. a second SIGTERM mid-drain forces an immediate exit (status 130)
#      with journals flushed — and the job still resumes byte-identically.
set -eu

workdir=$(mktemp -d)
daemon=""
cleanup() {
	[ -n "$daemon" ] && kill -9 "$daemon" 2>/dev/null || true
	rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/restore-sim" ./cmd/restore-sim
sim=$workdir/restore-sim
root=$workdir/service
args="-seed 7 -scale 0.5 -trials 0.5"

# wait_daemon polls until a daemon on $root answers (the address file may be
# stale from a killed daemon; the client just retries until it connects).
wait_daemon() {
	for _ in $(seq 100); do
		"$sim" -root "$root" jobs >/dev/null 2>&1 && return 0
		sleep 0.1
	done
	echo "daemon on $root never came up" >&2
	return 1
}

# wait_running polls until a job reports running.
wait_running() {
	for _ in $(seq 100); do
		"$sim" -root "$root" status "$1" 2>/dev/null | grep -q running && return 0
		sleep 0.1
	done
	echo "job $1 never started running" >&2
	return 1
}

echo "== one-shot baseline (serial, journalled, all seven benchmarks)"
$sim $args -out "$workdir/oneshot" fig2 >/dev/null

echo "== daemon up, submit a 2-shard job"
$sim -root "$root" serve >"$workdir/serve1.log" 2>&1 &
daemon=$!
wait_daemon
$sim -root "$root" $args -shards 2 submit fig2
wait_running job-000001

echo "== SIGKILL the daemon mid-campaign"
sleep 1
kill -9 "$daemon"
wait "$daemon" 2>/dev/null || true
daemon=""
grep -q '"state": "running"' "$root/jobs/job-000001/job.json" || {
	echo "expected the killed daemon to leave job-000001 marked running" >&2
	exit 1
}

echo "== restart: the job auto-resumes and finishes"
$sim -root "$root" serve >"$workdir/serve2.log" 2>&1 &
daemon=$!
wait_daemon
$sim -root "$root" -wait status job-000001
grep -q 'recovered from crashed daemon' "$workdir/serve2.log" || {
	echo "restarted daemon did not log crash recovery" >&2
	exit 1
}

echo "== merged output byte-identical to the one-shot run"
diff -r "$root/jobs/job-000001/merged" "$workdir/oneshot"

echo "== graceful SIGTERM re-queues the running job"
$sim -root "$root" $args -shards 2 submit fig2 >/dev/null
wait_running job-000002
kill -TERM "$daemon"
wait "$daemon" || true
daemon=""
[ ! -f "$root/serve.addr" ] || { echo "serve.addr survived a clean shutdown" >&2; exit 1; }
grep -q '"state": "queued"' "$root/jobs/job-000002/job.json" || {
	echo "graceful shutdown did not re-queue job-000002" >&2
	exit 1
}

echo "== double SIGTERM forces an immediate exit mid-drain"
$sim -root "$root" serve >"$workdir/serve3.log" 2>&1 &
daemon=$!
wait_daemon
wait_running job-000002
kill -TERM "$daemon"
sleep 0.2
kill -TERM "$daemon" 2>/dev/null || true
set +e
wait "$daemon"
code=$?
set -e
daemon=""
# 130 is the forced-exit status; 0 means the drain won the race — both leave
# the journals crash-consistent, which the resume below proves.
[ "$code" -eq 130 ] || [ "$code" -eq 0 ] || {
	echo "daemon exited $code after double signal" >&2
	exit 1
}

echo "== final restart completes the job byte-identically"
$sim -root "$root" serve >"$workdir/serve4.log" 2>&1 &
daemon=$!
wait_daemon
$sim -root "$root" -wait status job-000002
diff -r "$root/jobs/job-000002/merged" "$workdir/oneshot"
kill -TERM "$daemon"
wait "$daemon" || true
daemon=""

echo "service smoke: OK"
