// Package fixture holds bit-manipulation patterns bitwidth must accept.
package fixture

type StateSpace struct{}

func (s *StateSpace) Register(name string, kind, class int, word *uint64, bits int) {}

// Constant-folded shifts evaluate at arbitrary precision.
const pcMask = uint64(1)<<48 - 1

func inRange(x uint32) uint32 {
	return x << 31
}

func widenThenShift(x uint32) uint64 {
	return uint64(x) << 32
}

// The mask exactly covers the source width.
func exactMask(b uint8) uint64 {
	return uint64(b) & 0xFF
}

// Sign extension of genuinely signed data is the Alpha LDL semantics.
func realSignExtend(x int32) uint64 {
	return uint64(x)
}

func sext32(x int32) uint64 {
	return uint64(int64(x))
}

func goodRegister(s *StateSpace, w *uint64) {
	s.Register("w", 0, 0, w, 48)
	s.Register("w", 0, 0, w, 64)
	s.Register("w", 0, 0, w, 1)
}
