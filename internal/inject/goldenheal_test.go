package inject

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// A structurally invalid golden image — a torn copy, bit rot, a file that was
// never an image — must behave exactly like an absent one: the campaign warms
// up from scratch, rewrites the image atomically, and produces byte-identical
// results. Only a healthy image for a DIFFERENT configuration stays a hard
// error (overwriting it would destroy another campaign's warm-up).

func TestUArchGoldenImageSelfHealsInvalidFile(t *testing.T) {
	cfg := smallUArch(workload.Gzip)
	cfg.Points, cfg.TrialsPerPoint = 2, 4
	plain, err := RunUArch(cfg)
	if err != nil {
		t.Fatal(err)
	}

	for name, corrupt := range map[string]func(t *testing.T, path string){
		"garbage": func(t *testing.T, path string) {
			if err := os.WriteFile(path, []byte("this was never a golden image"), 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"empty": func(t *testing.T, path string) {
			if err := os.WriteFile(path, nil, 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"truncated": func(t *testing.T, path string) {
			// A valid image cut in half: the torn-copy case.
			save := cfg
			save.GoldenImage = path
			if _, err := RunUArch(save); err != nil {
				t.Fatal(err)
			}
			st, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, st.Size()/2); err != nil {
				t.Fatal(err)
			}
		},
	} {
		t.Run(name, func(t *testing.T) {
			img := filepath.Join(t.TempDir(), "warm.golden")
			corrupt(t, img)

			heal := cfg
			heal.GoldenImage = img
			heal.Obs = obs.NewRegistry()
			healed, err := RunUArch(heal)
			if err != nil {
				t.Fatalf("campaign did not self-heal: %v", err)
			}
			if !reflect.DeepEqual(plain.Trials, healed.Trials) {
				t.Fatal("self-healed trials differ from warm-up run")
			}
			if got := heal.Obs.Counter("campaign_uarch_golden_image_invalid_total").Value(); got != 1 {
				t.Fatalf("invalid_total = %d, want 1", got)
			}
			if got := heal.Obs.Counter("campaign_uarch_golden_image_saved_total").Value(); got != 1 {
				t.Fatalf("saved_total = %d, want 1 (image not rewritten)", got)
			}

			// The rewritten image is complete: the next run loads it.
			load := cfg
			load.GoldenImage = img
			load.Obs = obs.NewRegistry()
			loaded, err := RunUArch(load)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(plain.Trials, loaded.Trials) {
				t.Fatal("trials differ after reloading the healed image")
			}
			if got := load.Obs.Counter("campaign_uarch_golden_image_loaded_total").Value(); got != 1 {
				t.Fatalf("loaded_total = %d, want 1", got)
			}
		})
	}
}

func TestVMGoldenImageSelfHealsInvalidFile(t *testing.T) {
	cfg := smallVM(workload.Gzip, false)
	cfg.Trials, cfg.Points = 8, 2
	plain, err := RunVM(cfg)
	if err != nil {
		t.Fatal(err)
	}

	img := filepath.Join(t.TempDir(), "warm.golden")
	if err := os.WriteFile(img, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	heal := cfg
	heal.GoldenImage = img
	heal.Obs = obs.NewRegistry()
	healed, err := RunVM(heal)
	if err != nil {
		t.Fatalf("campaign did not self-heal: %v", err)
	}
	if !reflect.DeepEqual(plain.Trials, healed.Trials) {
		t.Fatal("self-healed trials differ from warm-up run")
	}
	if got := heal.Obs.Counter("campaign_vm_golden_image_invalid_total").Value(); got != 1 {
		t.Fatalf("invalid_total = %d, want 1", got)
	}

	load := cfg
	load.GoldenImage = img
	load.Obs = obs.NewRegistry()
	if _, err := RunVM(load); err != nil {
		t.Fatalf("healed image does not load: %v", err)
	}
	if got := load.Obs.Counter("campaign_vm_golden_image_loaded_total").Value(); got != 1 {
		t.Fatalf("loaded_total = %d, want 1", got)
	}
}

// Self-healing must not extend to mismatched-but-healthy images.
func TestGoldenImageMismatchIsNotHealed(t *testing.T) {
	img := filepath.Join(t.TempDir(), "warm.golden")
	cfg := smallUArch(workload.Gzip)
	cfg.Points, cfg.TrialsPerPoint = 1, 2
	cfg.GoldenImage = img
	if _, err := RunUArch(cfg); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(img)
	if err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.Seed = 99
	other.Obs = obs.NewRegistry()
	if _, err := RunUArch(other); !errors.Is(err, pipeline.ErrGoldenMismatch) {
		t.Fatalf("mismatched image: got %v, want ErrGoldenMismatch", err)
	}
	if got := other.Obs.Counter("campaign_uarch_golden_image_invalid_total").Value(); got != 0 {
		t.Fatalf("invalid_total = %d for a mismatched image, want 0", got)
	}
	after, err := os.ReadFile(img)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("mismatched image was overwritten")
	}
}

// An interruption that fires before the campaign's first point — the
// tightest window around the golden-image write — must never leave a
// partially-written image: ckptio's temp+fsync+rename path publishes the
// image completely or not at all, and the campaign returns ErrInterrupted
// only after the write is durable.
func TestInterruptAroundGoldenImageWriteLeavesCompleteImage(t *testing.T) {
	dir := t.TempDir()
	img := filepath.Join(dir, "warm.golden")
	// A stale temp file from a hypothetical earlier crash must be inert.
	stale := filepath.Join(dir, "warm.golden.tmp-stale")
	if err := os.WriteFile(stale, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}

	pre := make(chan struct{})
	close(pre) // interrupt already pending when the campaign starts

	cfg := smallUArch(workload.Gzip)
	cfg.Points, cfg.TrialsPerPoint = 2, 4
	cfg.GoldenImage = img
	cfg.Interrupt = pre
	if _, err := RunUArch(cfg); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("interrupted run: got %v, want ErrInterrupted", err)
	}

	// The image exists and is complete despite the interruption; no partial
	// temp files were published over it.
	cont := cfg
	cont.Interrupt = nil
	cont.Obs = obs.NewRegistry()
	res, err := RunUArch(cont)
	if err != nil {
		t.Fatalf("image written during interrupted run does not load: %v", err)
	}
	if got := cont.Obs.Counter("campaign_uarch_golden_image_loaded_total").Value(); got != 1 {
		t.Fatalf("loaded_total = %d, want 1", got)
	}
	plain := smallUArch(workload.Gzip)
	plain.Points, plain.TrialsPerPoint = 2, 4
	want, err := RunUArch(plain)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Trials, res.Trials) {
		t.Fatal("trials differ after resuming from the interrupted run's image")
	}

	// The only non-temp artifact in the directory is the finished image.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() == "warm.golden" || e.Name() == filepath.Base(stale) {
			continue
		}
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("leftover temp file %s after interrupted run", e.Name())
		}
		t.Fatalf("unexpected file %s in golden-image directory", e.Name())
	}

	// Same guarantee on the VM side.
	vimg := filepath.Join(dir, "vm.golden")
	vcfg := smallVM(workload.Gzip, false)
	vcfg.Trials, vcfg.Points = 8, 2
	vcfg.GoldenImage = vimg
	vcfg.Interrupt = pre
	if _, err := RunVM(vcfg); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("interrupted vm run: got %v, want ErrInterrupted", err)
	}
	vcont := vcfg
	vcont.Interrupt = nil
	vcont.Obs = obs.NewRegistry()
	if _, err := RunVM(vcont); err != nil {
		t.Fatalf("vm image written during interrupted run does not load: %v", err)
	}
	if got := vcont.Obs.Counter("campaign_vm_golden_image_loaded_total").Value(); got != 1 {
		t.Fatalf("vm loaded_total = %d, want 1", got)
	}
}
