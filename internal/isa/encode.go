package isa

// Instruction encoding. Instructions are 32-bit words with a 6-bit primary
// opcode in bits [31:26], following the Alpha layout:
//
//	Memory:  op[31:26] ra[25:21] rb[20:16] disp[15:0]       (disp sign-extended)
//	Branch:  op[31:26] ra[25:21] disp[20:0]                 (disp sign-extended, in words)
//	Operate: op[31:26] ra[25:21] rb[20:16] 000 0 fn[11:5] rc[4:0]
//	OperateL:op[31:26] ra[25:21] lit[20:13]    1 fn[11:5] rc[4:0]
//	Jump:    op[31:26] ra[25:21] rb[20:16] hint[15:14] 0...  (memory format)
//
// Branch displacements are in instruction words relative to the updated PC
// (PC of the branch + 4), exactly as on Alpha.

// InstBytes is the size of one encoded instruction in bytes.
const InstBytes = 4

// Primary opcodes.
const (
	pcMisc = 0x00 // HALT / NOP selected by low bits
	pcLDA  = 0x08
	pcLDAH = 0x09
	pcINTA = 0x10 // arithmetic, function-coded
	pcINTL = 0x11 // logical + cmov, function-coded
	pcINTS = 0x12 // shifts, function-coded
	pcJMP  = 0x1A // jump group, hint-coded
	pcLDL  = 0x28
	pcLDQ  = 0x29
	pcSTL  = 0x2C
	pcSTQ  = 0x2D
	pcBR   = 0x30
	pcBSR  = 0x34
	pcBEQ  = 0x39
	pcBLT  = 0x3A
	pcBLE  = 0x3B
	pcBNE  = 0x3D
	pcBGE  = 0x3E
	pcBGT  = 0x3F
)

// INTA function codes.
const (
	fnADDQ   = 0x00
	fnSUBQ   = 0x01
	fnMULQ   = 0x02
	fnADDL   = 0x03
	fnSUBL   = 0x04
	fnADDQV  = 0x05
	fnSUBQV  = 0x06
	fnMULQV  = 0x07
	fnCMPEQ  = 0x10
	fnCMPLT  = 0x11
	fnCMPLE  = 0x12
	fnCMPULT = 0x13
	fnCMPULE = 0x14
)

// INTL function codes.
const (
	fnAND    = 0x00
	fnBIS    = 0x01
	fnXOR    = 0x02
	fnBIC    = 0x03
	fnORNOT  = 0x04
	fnCMOVEQ = 0x10
	fnCMOVNE = 0x11
)

// INTS function codes.
const (
	fnSLL = 0x00
	fnSRL = 0x01
	fnSRA = 0x02
)

// Jump hints (bits [15:14] of the displacement field).
const (
	hintJMP = 0
	hintJSR = 1
	hintRET = 2
)

// Misc function codes (whole displacement-free word low bits).
const (
	fnHALT = 0x0000
	fnNOP  = 0x0001
)

type opEnc struct {
	primary uint32
	fn      uint32
	hint    uint32
}

var encTable = map[Op]opEnc{
	OpLDA: {primary: pcLDA}, OpLDAH: {primary: pcLDAH},
	OpLDL: {primary: pcLDL}, OpLDQ: {primary: pcLDQ},
	OpSTL: {primary: pcSTL}, OpSTQ: {primary: pcSTQ},
	OpBR: {primary: pcBR}, OpBSR: {primary: pcBSR},
	OpBEQ: {primary: pcBEQ}, OpBNE: {primary: pcBNE},
	OpBLT: {primary: pcBLT}, OpBLE: {primary: pcBLE},
	OpBGT: {primary: pcBGT}, OpBGE: {primary: pcBGE},
	OpJMP:    {primary: pcJMP, hint: hintJMP},
	OpJSR:    {primary: pcJMP, hint: hintJSR},
	OpRET:    {primary: pcJMP, hint: hintRET},
	OpADDQ:   {primary: pcINTA, fn: fnADDQ},
	OpSUBQ:   {primary: pcINTA, fn: fnSUBQ},
	OpMULQ:   {primary: pcINTA, fn: fnMULQ},
	OpADDL:   {primary: pcINTA, fn: fnADDL},
	OpSUBL:   {primary: pcINTA, fn: fnSUBL},
	OpADDQV:  {primary: pcINTA, fn: fnADDQV},
	OpSUBQV:  {primary: pcINTA, fn: fnSUBQV},
	OpMULQV:  {primary: pcINTA, fn: fnMULQV},
	OpCMPEQ:  {primary: pcINTA, fn: fnCMPEQ},
	OpCMPLT:  {primary: pcINTA, fn: fnCMPLT},
	OpCMPLE:  {primary: pcINTA, fn: fnCMPLE},
	OpCMPULT: {primary: pcINTA, fn: fnCMPULT},
	OpCMPULE: {primary: pcINTA, fn: fnCMPULE},
	OpAND:    {primary: pcINTL, fn: fnAND},
	OpBIS:    {primary: pcINTL, fn: fnBIS},
	OpXOR:    {primary: pcINTL, fn: fnXOR},
	OpBIC:    {primary: pcINTL, fn: fnBIC},
	OpORNOT:  {primary: pcINTL, fn: fnORNOT},
	OpCMOVEQ: {primary: pcINTL, fn: fnCMOVEQ},
	OpCMOVNE: {primary: pcINTL, fn: fnCMOVNE},
	OpSLL:    {primary: pcINTS, fn: fnSLL},
	OpSRL:    {primary: pcINTS, fn: fnSRL},
	OpSRA:    {primary: pcINTS, fn: fnSRA},
	OpHALT:   {primary: pcMisc, fn: fnHALT},
	OpNOP:    {primary: pcMisc, fn: fnNOP},
}

// Encode packs the instruction into a 32-bit word. Displacements out of
// range are silently truncated to their field width; the workload builder
// validates ranges before emitting.
func Encode(i Inst) uint32 {
	e, ok := encTable[i.Op]
	if !ok {
		return 0x07 << 26 // undefined primary opcode; decodes to OpInvalid
	}
	w := e.primary << 26
	switch ClassOf(i.Op) {
	case ClassHalt, ClassNop:
		w |= e.fn
	case ClassLoad, ClassStore:
		w |= uint32(i.Ra&31) << 21
		w |= uint32(i.Rb&31) << 16
		w |= uint32(uint16(i.Disp))
	case ClassALU, ClassMul:
		if i.Op == OpLDA || i.Op == OpLDAH {
			w |= uint32(i.Ra&31) << 21
			w |= uint32(i.Rb&31) << 16
			w |= uint32(uint16(i.Disp))
			break
		}
		w |= uint32(i.Ra&31) << 21
		if i.UseLit {
			w |= uint32(i.Lit) << 13
			w |= 1 << 12
		} else {
			w |= uint32(i.Rb&31) << 16
		}
		w |= e.fn << 5
		w |= uint32(i.Rc & 31)
	case ClassBranch:
		if i.IsIndirect() {
			w |= uint32(i.Rc&31) << 21 // link register in ra field
			w |= uint32(i.Rb&31) << 16
			w |= e.hint << 14
			break
		}
		w |= uint32(i.Ra&31) << 21
		w |= uint32(i.Disp) & 0x1FFFFF
	}
	return w
}

// Decode unpacks a 32-bit instruction word. Undecodable words yield an Inst
// with Op == OpInvalid; the pipeline raises an illegal-instruction exception
// when such an instruction reaches commit, mirroring how a corrupted
// instruction latch manifests on real hardware.
func Decode(w uint32) Inst {
	primary := w >> 26
	ra := Reg((w >> 21) & 31)
	rb := Reg((w >> 16) & 31)
	disp16 := int32(int16(uint16(w)))
	switch primary {
	case pcMisc:
		switch w & 0xFFFF {
		case fnHALT:
			return Inst{Op: OpHALT}
		case fnNOP:
			return Inst{Op: OpNOP}
		}
	case pcLDA:
		return Inst{Op: OpLDA, Ra: ra, Rb: rb, Disp: disp16}
	case pcLDAH:
		return Inst{Op: OpLDAH, Ra: ra, Rb: rb, Disp: disp16}
	case pcLDL:
		return Inst{Op: OpLDL, Ra: ra, Rb: rb, Disp: disp16}
	case pcLDQ:
		return Inst{Op: OpLDQ, Ra: ra, Rb: rb, Disp: disp16}
	case pcSTL:
		return Inst{Op: OpSTL, Ra: ra, Rb: rb, Disp: disp16}
	case pcSTQ:
		return Inst{Op: OpSTQ, Ra: ra, Rb: rb, Disp: disp16}
	case pcINTA, pcINTL, pcINTS:
		return decodeOperate(w, primary, ra)
	case pcJMP:
		hint := (w >> 14) & 3
		var op Op
		switch hint {
		case hintJMP:
			op = OpJMP
		case hintJSR:
			op = OpJSR
		case hintRET:
			op = OpRET
		default:
			return Inst{}
		}
		return Inst{Op: op, Rc: ra, Rb: rb}
	case pcBR, pcBSR, pcBEQ, pcBNE, pcBLT, pcBLE, pcBGT, pcBGE:
		disp := int32(w<<11) >> 11 // sign-extend 21 bits
		op := branchOp(primary)
		return Inst{Op: op, Ra: ra, Disp: disp}
	}
	return Inst{}
}

func branchOp(primary uint32) Op {
	switch primary {
	case pcBR:
		return OpBR
	case pcBSR:
		return OpBSR
	case pcBEQ:
		return OpBEQ
	case pcBNE:
		return OpBNE
	case pcBLT:
		return OpBLT
	case pcBLE:
		return OpBLE
	case pcBGT:
		return OpBGT
	case pcBGE:
		return OpBGE
	}
	return OpInvalid
}

func decodeOperate(w, primary uint32, ra Reg) Inst {
	fn := (w >> 5) & 0x7F
	rc := Reg(w & 31)
	useLit := w&(1<<12) != 0
	inst := Inst{Ra: ra, Rc: rc, UseLit: useLit}
	if useLit {
		inst.Lit = uint8((w >> 13) & 0xFF)
	} else {
		inst.Rb = Reg((w >> 16) & 31)
	}
	var op Op
	switch primary {
	case pcINTA:
		op = intaOp(fn)
	case pcINTL:
		op = intlOp(fn)
	case pcINTS:
		op = intsOp(fn)
	}
	if op == OpInvalid {
		return Inst{}
	}
	inst.Op = op
	return inst
}

func intaOp(fn uint32) Op {
	switch fn {
	case fnADDQ:
		return OpADDQ
	case fnSUBQ:
		return OpSUBQ
	case fnMULQ:
		return OpMULQ
	case fnADDL:
		return OpADDL
	case fnSUBL:
		return OpSUBL
	case fnADDQV:
		return OpADDQV
	case fnSUBQV:
		return OpSUBQV
	case fnMULQV:
		return OpMULQV
	case fnCMPEQ:
		return OpCMPEQ
	case fnCMPLT:
		return OpCMPLT
	case fnCMPLE:
		return OpCMPLE
	case fnCMPULT:
		return OpCMPULT
	case fnCMPULE:
		return OpCMPULE
	}
	return OpInvalid
}

func intlOp(fn uint32) Op {
	switch fn {
	case fnAND:
		return OpAND
	case fnBIS:
		return OpBIS
	case fnXOR:
		return OpXOR
	case fnBIC:
		return OpBIC
	case fnORNOT:
		return OpORNOT
	case fnCMOVEQ:
		return OpCMOVEQ
	case fnCMOVNE:
		return OpCMOVNE
	}
	return OpInvalid
}

func intsOp(fn uint32) Op {
	switch fn {
	case fnSLL:
		return OpSLL
	case fnSRL:
		return OpSRL
	case fnSRA:
		return OpSRA
	}
	return OpInvalid
}

// BranchTarget computes the target of a PC-relative branch located at pc.
func BranchTarget(pc uint64, disp int32) uint64 {
	return pc + InstBytes + uint64(int64(disp))*InstBytes
}

// BranchDisp computes the displacement that encodes a branch at pc targeting
// target. The second return value reports whether it fits in 21 bits.
func BranchDisp(pc, target uint64) (int32, bool) {
	delta := int64(target) - int64(pc) - InstBytes
	if delta%InstBytes != 0 {
		return 0, false
	}
	d := delta / InstBytes
	if d < -(1<<20) || d >= 1<<20 {
		return 0, false
	}
	return int32(d), true
}
