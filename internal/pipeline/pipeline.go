package pipeline

import (
	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/predictor"
)

// Pipeline is one instance of the processor model. It owns its memory image
// and all microarchitectural state. It is not safe for concurrent use.
type Pipeline struct {
	cfg Config
	mem *mem.Memory

	// Injectable state (registered in space).
	fq          fetchQueue
	rob         reorderBuffer
	sched       scheduler
	stq         storeQueue
	ldq         loadQueue
	prf         regFile
	specRAT     aliasTable
	archRAT     aliasTable
	free        freeList
	exec        execWindow
	fetchPC     uint64
	watchdog    uint64
	specHist    uint64 // fetch-time speculative global branch history
	retiredHist uint64 // committed global branch history

	space StateSpace

	// dcache, when set, memoises isa.Decode over the workload's static
	// code image. It is not machine state: campaigns build it once and
	// share it read-only across the clone pool and parallel workers, and
	// lookups verify the fetched word so corrupted fetches fall back to a
	// real decode. Nil means decode every word (the pre-cache behaviour).
	dcache *isa.DecodeCache

	// Prediction and caches (excluded from injection, Section 4.2).
	dir    *predictor.Combined
	btb    *predictor.BTB
	ras    *predictor.RAS
	conf   predictor.ConfidenceEstimator
	memdep *predictor.MemDep
	l1i    *cache.Cache
	l1d    *cache.Cache
	l2     *cache.Cache
	itlb   *cache.Cache
	dtlb   *cache.Cache

	// Simulator bookkeeping (deterministic, not hardware state).
	cycle           uint64 //restorelint:ignore stateregister -- cycle counter, not a latch
	status          Status
	excKind         arch.ExceptionKind
	excPC           uint64 //restorelint:ignore stateregister -- exception report, written at halt
	excAddr         uint64 //restorelint:ignore stateregister -- exception report, written at halt
	fetchStallUntil uint64 //restorelint:ignore stateregister -- timing bookkeeping, not a latch
	fetchFaulted    bool
	stats           Stats

	// issueScratch avoids per-cycle allocation in the selection loop: a
	// fixed array sized by the scheduler (at most SchedSize candidates per
	// cycle), sorted in place, so steady-state Cycle stays heap-free.
	issueScratch [SchedSize]issueCand
	issueCount   int

	// obsM holds write-only telemetry (see metrics.go); nil when detached.
	// Like the hooks below, it is not machine state and is not copied by
	// Clone/ResetFrom.
	obsM *pipeMetrics

	// CommitHook observes every retired instruction (and the exception
	// pseudo-retirement). Used by golden-lockstep comparison, event logs
	// and the ReStore controller.
	CommitHook func(CommitEvent)
	// BranchHook observes every branch resolution in the execution core.
	BranchHook func(BranchEvent)
	// MissHook observes every L1 data-cache miss at load issue. It exists
	// so candidate symptoms beyond the paper's chosen two can be plugged
	// into the ReStore framework (Section 3.3 evaluates cache misses as
	// a candidate — and rejects them for their false-positive rate).
	MissHook func(addr uint64)
}

type issueCand struct {
	slot int
	pos  uint64
}

// New builds a pipeline over the given memory image starting at entry.
func New(cfg Config, m *mem.Memory, entry uint64) (*Pipeline, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	p := &Pipeline{
		cfg:    cfg,
		mem:    m,
		dir:    predictor.NewCombined(cfg.PredictorBits, cfg.HistoryBits),
		btb:    predictor.NewBTB(cfg.BTBSetBits, cfg.BTBWays),
		ras:    predictor.NewRAS(cfg.RASDepth),
		memdep: newMemDep(cfg),
		l1i:    cache.New(cfg.L1I),
		l1d:    cache.New(cfg.L1D),
		l2:     cache.New(cfg.L2),
		itlb:   cache.New(cfg.ITLB),
		dtlb:   cache.New(cfg.DTLB),
		status: StatusRunning,
	}
	switch cfg.Confidence {
	case ConfidenceJRS:
		p.conf = predictor.NewJRS(cfg.JRS, nil)
	case ConfidencePerfect:
		p.conf = predictor.Perfect{}
	case ConfidenceNever:
		p.conf = predictor.Never{}
	}
	p.registerState()
	p.initArchState([32]uint64{}, entry)
	return p, nil
}

func newMemDep(cfg Config) *predictor.MemDep {
	if !cfg.MemDepSpeculation {
		return nil
	}
	return predictor.NewMemDep(cfg.MemDepBits)
}

func (p *Pipeline) registerState() {
	p.space = StateSpace{}
	p.fq.register(&p.space)
	p.rob.register(&p.space)
	p.sched.register(&p.space)
	p.stq.register(&p.space)
	p.ldq.register(&p.space)
	p.prf.register(&p.space)
	p.specRAT.register(&p.space, "specRAT")
	p.archRAT.register(&p.space, "archRAT")
	p.free.register(&p.space)
	p.exec.register(&p.space)
	p.space.Register("fetchPC", KindLatch, ClassControl, &p.fetchPC, 48)
	p.space.Register("watchdog", KindLatch, ClassControl, &p.watchdog, 16)
	p.space.Register("specHist", KindLatch, ClassControl, &p.specHist, int(p.cfg.HistoryBits))
	p.space.Register("retiredHist", KindLatch, ClassControl, &p.retiredHist, int(p.cfg.HistoryBits))
}

// initArchState installs architectural register values and a fetch PC into
// an empty machine: identity-mapped RAT over physical registers 0..31, the
// rest free.
func (p *Pipeline) initArchState(regs [32]uint64, pc uint64) {
	p.fq.reset()
	p.rob.reset()
	p.sched.reset()
	p.stq.reset()
	p.ldq.reset()
	p.exec.reset()
	for i := uint64(0); i < 32; i++ {
		p.specRAT.set(i, i)
		p.archRAT.set(i, i)
		p.prf.write(i, regs[i])
		p.prf.setReady(i, true)
	}
	p.prf.write(31, 0) // architectural zero
	for i := uint64(32); i < PhysRegs; i++ {
		p.free.free(i)
		p.prf.setReady(i, true)
	}
	p.fetchPC = pc
	p.watchdog = 0
	p.specHist = 0
	p.retiredHist = 0
	p.fetchFaulted = false
	p.fetchStallUntil = 0
	p.status = StatusRunning
	p.excKind = arch.ExcNone
}

// Reset re-initialises the pipeline to the given architectural state,
// clearing all in-flight work. This is the checkpoint-restore entry point:
// ReStore rolls back by resetting the machine to checkpointed registers and
// a checkpointed PC after memory has been unwound.
func (p *Pipeline) Reset(regs [32]uint64, pc uint64) {
	p.free.reset()
	p.initArchState(regs, pc)
}

// Status returns the machine's run state.
func (p *Pipeline) Status() Status { return p.status }

// Exception returns the exception that stopped the pipeline, with the
// faulting PC and address.
func (p *Pipeline) Exception() (arch.ExceptionKind, uint64, uint64) {
	return p.excKind, p.excPC, p.excAddr
}

// State exposes the injectable state space.
func (p *Pipeline) State() *StateSpace { return &p.space }

// SetDecodeCache installs (or, with nil, removes) a shared pre-decoded
// instruction cache. Clones inherit the pointer; the cache is immutable and
// safe to share across goroutines.
func (p *Pipeline) SetDecodeCache(d *isa.DecodeCache) { p.dcache = d }

// decode turns a fetched instruction word into an Inst, consulting the
// decode cache first. The cache hits only when the word at pc still matches
// the cached image, so fault-corrupted words and wild PCs decode afresh and
// behave exactly as without the cache.
func (p *Pipeline) decode(pc uint64, word uint32) isa.Inst {
	if p.dcache != nil {
		if inst, ok := p.dcache.Lookup(pc, word); ok {
			return inst
		}
	}
	return isa.Decode(word)
}

// Stats returns a copy of the counters.
func (p *Pipeline) Stats() Stats {
	s := p.stats
	s.Cycles = p.cycle
	return s
}

// Cycles returns the elapsed cycle count.
func (p *Pipeline) Cycles() uint64 { return p.cycle }

// Retired returns the number of retired instructions.
func (p *Pipeline) Retired() uint64 { return p.stats.Retired }

// Memory returns the pipeline's memory image.
func (p *Pipeline) Memory() *mem.Memory { return p.mem }

// ArchReg reads the committed architectural value of register r.
func (p *Pipeline) ArchReg(r isa.Reg) uint64 {
	if r == isa.RegZero {
		return 0
	}
	return p.prf.read(p.archRAT.get(uint64(r)))
}

// ArchRegs returns all 32 committed architectural register values.
func (p *Pipeline) ArchRegs() [32]uint64 {
	var out [32]uint64
	for i := 0; i < 32; i++ {
		out[i] = p.ArchReg(isa.Reg(i))
	}
	out[31] = 0
	return out
}

// CorruptArchReg flips the given bit of the physical register currently
// mapped to architectural register r — the Figure 2 fault model ("single
// bit flip in the result of an instruction") applied to live machine state.
// Used by examples and directed tests; statistical campaigns sample the
// whole state space instead.
func (p *Pipeline) CorruptArchReg(r isa.Reg, bit uint) {
	p.prf.flipBit(p.archRAT.get(uint64(r)), bit)
}

// CommitPC returns the PC of the next instruction to retire (the precise
// architectural PC): the ROB head if work is in flight, else the fetch PC.
func (p *Pipeline) CommitPC() uint64 {
	if p.rob.count > 0 {
		return p.rob.pc[p.rob.head%ROBSize]
	}
	return p.fetchPC
}

// Clone deep-copies the pipeline, its memory image, caches and predictors.
// Fault-injection campaigns warm a pipeline to an injection point once and
// fork a clone per trial. Hooks are not copied.
func (p *Pipeline) Clone() *Pipeline {
	n := &Pipeline{}
	*n = *p
	n.CommitHook = nil
	n.BranchHook = nil
	n.MissHook = nil
	n.obsM = nil
	n.mem = p.mem.Clone()
	n.dir = p.dir.Clone()
	n.btb = p.btb.Clone()
	n.ras = p.ras.Clone()
	n.conf = p.conf.Clone()
	if p.memdep != nil {
		n.memdep = p.memdep.Clone()
	}
	if jrs, ok := n.conf.(*predictor.JRS); ok {
		jrs.SetHistorySource(nil)
	}
	n.l1i = p.l1i.Clone()
	n.l1d = p.l1d.Clone()
	n.l2 = p.l2.Clone()
	n.itlb = p.itlb.Clone()
	n.dtlb = p.dtlb.Clone()
	n.registerState() // rebind the clone's slices onto its own packed backing
	n.space.copyPackedFrom(&p.space)
	n.space.legacyHash = p.space.legacyHash
	return n
}

// ResetFrom makes p a bit-identical fork of src — the same machine state a
// fresh src.Clone() would carry — while reusing p's existing allocations
// (memory pages, cache and predictor tables, the registered state space).
// p must have been built from the same Config as src (e.g. it is an earlier
// Clone of the same master); the per-trial clone pool in fault-injection
// campaigns depends on that to recycle one pipeline across thousands of
// trials instead of allocating each from scratch. Hooks are cleared, as in
// Clone.
//
// ResetFrom is the clone pool's re-image path, annotated hot: once the pool
// reaches steady state (every clone shaped like the master) it must not
// allocate. The branches below that allocate only fire on shape mismatch,
// which the pool never produces; each carries an allowalloc sanction.
//
//restorelint:hotpath
func (p *Pipeline) ResetFrom(src *Pipeline) {
	p.cfg = src.cfg
	p.space.copyPackedFrom(&src.space)
	p.space.legacyHash = src.space.legacyHash
	p.dcache = src.dcache
	p.fq.copyFrom(&src.fq)
	p.rob.copyFrom(&src.rob)
	p.sched.copyFrom(&src.sched)
	p.stq.copyFrom(&src.stq)
	p.ldq.copyFrom(&src.ldq)
	p.prf.copyFrom(&src.prf)
	p.specRAT.copyFrom(&src.specRAT)
	p.archRAT.copyFrom(&src.archRAT)
	p.free.copyFrom(&src.free)
	p.exec.copyFrom(&src.exec)
	p.fetchPC = src.fetchPC
	p.watchdog = src.watchdog
	p.specHist = src.specHist
	p.retiredHist = src.retiredHist

	p.cycle = src.cycle
	p.status = src.status
	p.excKind = src.excKind
	p.excPC = src.excPC
	p.excAddr = src.excAddr
	p.fetchStallUntil = src.fetchStallUntil
	p.fetchFaulted = src.fetchFaulted
	p.stats = src.stats

	p.mem.CopyFrom(src.mem)
	p.dir.CopyFrom(src.dir)
	p.btb.CopyFrom(src.btb)
	p.ras.CopyFrom(src.ras)
	switch sc := src.conf.(type) {
	case *predictor.JRS:
		if dj, ok := p.conf.(*predictor.JRS); ok {
			dj.CopyFrom(sc) // CopyFrom detaches the history source
		} else {
			//restorelint:allowalloc -- estimator-kind mismatch only; the clone pool re-images identically-configured pipelines
			nj := sc.Clone()
			nj.(*predictor.JRS).SetHistorySource(nil)
			p.conf = nj
		}
	default:
		//restorelint:allowalloc -- estimator-kind mismatch only; the clone pool re-images identically-configured pipelines
		p.conf = src.conf.Clone()
	}
	if src.memdep != nil && p.memdep != nil {
		p.memdep.CopyFrom(src.memdep)
	} else if src.memdep != nil {
		//restorelint:allowalloc -- predictor-presence mismatch only; the clone pool re-images identically-configured pipelines
		p.memdep = src.memdep.Clone()
	} else {
		p.memdep = nil
	}
	p.l1i.CopyFrom(src.l1i)
	p.l1d.CopyFrom(src.l1d)
	p.l2.CopyFrom(src.l2)
	p.itlb.CopyFrom(src.itlb)
	p.dtlb.CopyFrom(src.dtlb)

	p.CommitHook = nil
	p.BranchHook = nil
	p.MissHook = nil
	p.obsM = nil
}

// Step advances the machine by one clock. It is the campaign engine's trial
// inner loop — a microarchitectural trial calls it millions of times — and
// is therefore annotated as a hot path: restorelint's hotpathalloc analyzer
// proves it transitively allocation-free in steady state, and an
// AllocsPerRun test pins the same property dynamically.
//
//restorelint:hotpath
func (p *Pipeline) Step() { p.Cycle() }

// Cycle advances the machine by one clock. Stages run in reverse order so
// that results become visible to younger instructions one cycle later, as
// in hardware.
func (p *Pipeline) Cycle() {
	if p.status != StatusRunning {
		return
	}
	p.cycle++
	p.doCommit()
	if p.status == StatusRunning {
		p.doWriteback()
		p.doIssue()
		p.doRename()
		p.doFetch()

		p.watchdog++
		if p.watchdog >= p.cfg.WatchdogCycles {
			p.status = StatusDeadlocked
		}
		if p.memdep != nil && p.cycle%p.cfg.MemDepDecayCycles == 0 {
			p.memdep.Decay()
		}
	}
	if p.obsM != nil {
		p.obsM.sample(p)
	}
}

// RunCycles advances up to n cycles, stopping early if the machine leaves
// the running state. It returns the cycles actually executed.
func (p *Pipeline) RunCycles(n uint64) uint64 {
	start := p.cycle
	for i := uint64(0); i < n && p.status == StatusRunning; i++ {
		p.Cycle()
	}
	return p.cycle - start
}

// RunRetired advances until the retired-instruction count increases by at
// least n, the cycle budget is exhausted, or the machine stops. It returns
// the instructions retired.
func (p *Pipeline) RunRetired(n, maxCycles uint64) uint64 {
	start := p.stats.Retired
	budget := p.cycle + maxCycles
	for p.status == StatusRunning && p.stats.Retired-start < n && p.cycle < budget {
		p.Cycle()
	}
	return p.stats.Retired - start
}

// ---------------------------------------------------------------------------
// Commit

func (p *Pipeline) doCommit() {
	for n := 0; n < CommitWidth; n++ {
		if p.rob.count == 0 {
			return
		}
		idx := p.rob.head % ROBSize
		flags := p.rob.flags[idx]
		if flags&robValid == 0 || flags&robCompleted == 0 {
			// Head not ready (or corrupted into invalidity: the
			// watchdog will eventually fire).
			return
		}

		ev := CommitEvent{
			Cycle: p.cycle,
			Index: p.stats.Retired,
			PC:    p.rob.pc[idx],
			Inst:  unpackCtl(p.rob.ctl[idx]),
		}

		if flags&robExcValid != 0 {
			kind := arch.ExceptionKind((flags >> robExcShift) & 7)
			if kind == arch.ExcNone {
				kind = arch.ExcAccessFault // corrupted kind field
			}
			ev.Exception = kind
			ev.ExcAddr = p.rob.result[idx]
			p.status = StatusExcepted
			p.excKind = kind
			p.excPC = ev.PC
			p.excAddr = ev.ExcAddr
			p.fire(ev)
			return
		}

		if flags&robHalt != 0 {
			ev.Halted = true
			ev.Target = ev.PC
			p.status = StatusHalted
			p.retire(idx)
			p.fire(ev)
			return
		}

		ev.Target = p.rob.result[idx]

		if flags&robIsStore != 0 {
			if !p.commitStore(idx, &ev) {
				return // store raised a late exception this cycle
			}
		}
		if flags&robHasDest != 0 {
			ev.HasDest = true
			ev.DestArch = isa.Reg(p.rob.archDest[idx] % 32)
			ev.DestVal = p.prf.read(p.rob.physDest[idx])
			p.archRAT.set(p.rob.archDest[idx], p.rob.physDest[idx])
			p.free.free(p.rob.oldPhys[idx])
		}
		if flags&robIsLoad != 0 {
			ev.IsLoad = true
			ev.MemAddr = p.rob.result[idx]
			// For loads the committed next-PC is sequential.
			ev.Target = ev.PC + isa.InstBytes
			// Drain the LDQ head.
			h := p.ldq.head % LDQSize
			p.ldq.flags[h] = 0
			p.ldq.head = (p.ldq.head + 1) % LDQSize
			if p.ldq.count > 0 {
				p.ldq.count--
			}
		}
		if flags&robIsBranch != 0 {
			ev.IsBranch = true
			ev.Taken = flags&robActTaken != 0
			p.trainBranch(idx, flags)
		} else if flags&robIsLoad == 0 && flags&robIsStore == 0 {
			ev.Target = ev.PC + isa.InstBytes
		}

		p.retire(idx)
		p.fire(ev)
	}
}

// retire pops the ROB head and resets the watchdog.
func (p *Pipeline) retire(idx uint64) {
	p.rob.flags[idx] = 0
	p.rob.head = (p.rob.head + 1) % ROBSize
	p.rob.count--
	p.watchdog = 0
	p.stats.Retired++
}

// commitStore drains the STQ head into memory. It returns false if the
// store turns out to fault at commit time (the exception is raised through
// the normal path next cycle).
func (p *Pipeline) commitStore(idx uint64, ev *CommitEvent) bool {
	ev.IsStore = true
	ev.Target = ev.PC + isa.InstBytes
	h := p.stq.head % STQSize
	sf := p.stq.flags[h]
	addr, data := p.stq.addr[h], p.stq.data[h]
	ev.MemAddr = addr
	ev.StoreVal = data
	ev.StoreSize = 8
	isSTL := sf&stqIsSTL != 0
	if isSTL {
		ev.StoreSize = 4
		ev.StoreVal = uint64(uint32(data))
	}

	var err error
	if isSTL {
		err = p.mem.WriteL(addr, uint32(data))
	} else {
		err = p.mem.WriteQ(addr, data)
	}
	if err != nil {
		// The STQ entry was corrupted into a faulting address after
		// issue-time checks passed: convert to a commit-time
		// exception on this instruction.
		p.rob.flags[idx] |= robExcValid |
			uint64(memExcKind(err))<<robExcShift
		p.rob.result[idx] = addr
		return false
	}
	p.stq.flags[h] = 0
	p.stq.head = (p.stq.head + 1) % STQSize
	if p.stq.count > 0 {
		p.stq.count--
	}
	p.stats.StoresRetired++
	return true
}

// trainBranch updates predictors with the committed outcome.
func (p *Pipeline) trainBranch(idx, flags uint64) {
	pc := p.rob.pc[idx]
	taken := flags&robActTaken != 0
	target := p.rob.result[idx]
	p.stats.Branches++
	if flags&robIsCond != 0 {
		p.stats.CondBranches++
		hist := (flags >> robHistShift) & p.histMask()
		p.dir.UpdateH(pc, taken, hist)
		p.retiredHist = p.shiftHist(p.retiredHist, taken)
		correct := (flags&robPredTaken != 0) == taken
		if !correct {
			p.stats.CommittedCondMispredicts++
		}
		p.conf.Update(pc, correct)
	}
	if taken {
		p.btb.Update(pc, target)
	}
}

func (p *Pipeline) fire(ev CommitEvent) {
	if p.CommitHook != nil {
		p.CommitHook(ev)
	}
}

// histMask returns the mask for the global-history register width.
func (p *Pipeline) histMask() uint64 { return 1<<p.cfg.HistoryBits - 1 }

// shiftHist shifts a branch outcome into a history register.
func (p *Pipeline) shiftHist(hist uint64, taken bool) uint64 {
	hist <<= 1
	if taken {
		hist |= 1
	}
	return hist & p.histMask()
}

func memExcKind(err error) arch.ExceptionKind {
	if f, ok := err.(*mem.Fault); ok && f.Kind == mem.FaultAlign {
		return arch.ExcAlignment
	}
	return arch.ExcAccessFault
}
