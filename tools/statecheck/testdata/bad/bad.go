// Package bad is a statecheck fixture: leaky holds an unregistered state
// word, so the linter must flag it.
package bad

type StateSpace struct{}

func (s *StateSpace) Register(name string, kind, class int, word *uint64, bits int) {}

type leaky struct {
	regs [4]uint64
	head uint64
	tail uint64 // BUG (intentional): never registered below

	cycles uint64 //statecheck:ignore — bookkeeping, exempted
	dirty  bool   // not a state word, never checked
}

func (l *leaky) register(s *StateSpace) {
	for i := range l.regs {
		s.Register("leaky.regs", 0, 0, &l.regs[i], 64)
	}
	s.Register("leaky.head", 0, 0, &l.head, 2)
}
