package workload

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"repro/internal/isa"
	"repro/internal/mem"
)

// Benchmark names one of the seven SPEC2000 integer workloads the paper
// evaluates (Section 4.2).
type Benchmark string

// The benchmark suite.
const (
	Bzip2  Benchmark = "bzip2"
	Gap    Benchmark = "gap"
	GCC    Benchmark = "gcc"
	Gzip   Benchmark = "gzip"
	MCF    Benchmark = "mcf"
	Parser Benchmark = "parser"
	Vortex Benchmark = "vortex"
)

// Benchmarks returns the full suite in the paper's order.
func Benchmarks() []Benchmark {
	return []Benchmark{Bzip2, Gap, GCC, Gzip, MCF, Parser, Vortex}
}

// Config parameterises program generation.
type Config struct {
	// Seed drives all data-content and layout randomness. The same
	// (benchmark, seed) pair always yields a bit-identical program.
	Seed int64
	// Scale multiplies data-structure sizes; 0 means 1.0. Campaigns use
	// the default; tests may shrink footprints for speed.
	Scale float64
}

type profile struct {
	kernels []kernel
	// sequence indexes kernels (with repetition) to form one outer
	// iteration, expressing relative weights.
	sequence []int
}

func scaled(n int, scale float64, min int) int {
	v := int(float64(n) * scale)
	if v < min {
		v = min
	}
	return v
}

// profileFor builds the kernel mix for a benchmark. The mixes follow each
// workload's published character: mcf is dominated by pointer chasing over a
// large working set, gcc by branchy scans, dispatch and calls, gap by
// arithmetic and interpreter-style dispatch, vortex by hash-table lookups,
// parser by list walking and branchy token scans, bzip2/gzip by streaming
// arithmetic over buffers.
// Inner-loop trip counts are kept short and FIXED (not footprint-scaled):
// like compiler-unrolled SPEC hot loops, their exit branches fall within the
// global history window and predict correctly once warm, so mispredictions
// — and therefore JRS high-confidence symptoms — are dominated by genuinely
// data-dependent branches, matching the workload statistics the paper's
// false-positive analysis rides on.
const shortTrip = 8

func profileFor(bench Benchmark, scale float64) (profile, error) {
	s := func(n, min int) int { return scaled(n, scale, min) }
	switch bench {
	case Bzip2:
		return profile{
			kernels: []kernel{
				&arraySum{elems: 2 * shortTrip},
				&stride{elems: shortTrip},
				&bitOps{iters: shortTrip},
				&branchy{elems: 2 * shortTrip, bias: 0.85},
				&deadweight{length: 24},
			},
			sequence: []int{0, 2, 1, 3, 4, 0, 2},
		}, nil
	case Gap:
		return profile{
			kernels: []kernel{
				&bitOps{iters: shortTrip},
				&hashTab{keys: shortTrip, buckets: s(1024, 64)},
				&callTree{},
				&switchy{elems: shortTrip},
				&deadweight{length: 20},
			},
			sequence: []int{0, 3, 2, 1, 4, 0, 3},
		}, nil
	case GCC:
		return profile{
			kernels: []kernel{
				&branchy{elems: 2 * shortTrip, bias: 0.92},
				&switchy{elems: shortTrip},
				&callTree{},
				&hashTab{keys: shortTrip, buckets: s(2048, 64)},
				&deadweight{length: 28},
			},
			sequence: []int{0, 2, 1, 0, 3, 4, 2},
		}, nil
	case Gzip:
		return profile{
			kernels: []kernel{
				&arraySum{elems: 2 * shortTrip},
				&bitOps{iters: shortTrip},
				&stride{elems: shortTrip},
				&branchy{elems: 2 * shortTrip, bias: 0.9},
				&deadweight{length: 20},
			},
			sequence: []int{0, 1, 3, 2, 4, 1},
		}, nil
	case MCF:
		return profile{
			kernels: []kernel{
				&ptrChase{nodes: s(16384, 64), steps: shortTrip},
				&branchy{elems: 2 * shortTrip, bias: 0.88},
				&ptrChase{nodes: s(4096, 32), steps: shortTrip},
				&deadweight{length: 16},
			},
			sequence: []int{0, 1, 2, 0, 3},
		}, nil
	case Parser:
		return profile{
			kernels: []kernel{
				&ptrChase{nodes: s(2048, 32), steps: shortTrip},
				&branchy{elems: 2 * shortTrip, bias: 0.9},
				&callTree{},
				&bitOps{iters: shortTrip},
				&deadweight{length: 24},
			},
			sequence: []int{0, 1, 2, 1, 3, 4, 0},
		}, nil
	case Vortex:
		return profile{
			kernels: []kernel{
				&hashTab{keys: shortTrip, buckets: s(8192, 64)},
				&ptrChase{nodes: s(4096, 32), steps: shortTrip},
				&callTree{},
				&arraySum{elems: 2 * shortTrip},
				&deadweight{length: 20},
			},
			sequence: []int{0, 1, 2, 0, 3, 4},
		}, nil
	}
	return profile{}, fmt.Errorf("workload: unknown benchmark %q", bench)
}

// Generate builds the synthetic program for a benchmark. Programs loop
// forever: the outer loop re-runs the kernel sequence and bumps a global
// iteration counter, so any fault-injection window length is available.
func Generate(bench Benchmark, cfg Config) (*Program, error) {
	scale := cfg.Scale
	if scale == 0 {
		scale = 1.0
	}
	prof, err := profileFor(bench, scale)
	if err != nil {
		return nil, err
	}
	if len(prof.kernels) > 10 {
		return nil, fmt.Errorf("workload: %s uses %d kernels; only 10 base registers", bench, len(prof.kernels))
	}

	h := fnv.New64a()
	h.Write([]byte(bench))
	rng := rand.New(rand.NewSource(cfg.Seed ^ int64(h.Sum64())))

	b := NewBuilder(string(bench))

	// Global iteration-counter slot.
	iterSeg := b.AllocData("globals", make([]byte, dataStart), mem.PermRW)

	// Entry: establish the stack, clear the iteration counter, run kernel
	// setups (each loads its base register).
	b.LoadImm(isa.RegSP, StackTop)
	b.Op(isa.OpBIS, isa.RegZero, isa.RegZero, RegIter)
	b.LoadImm(isa.Reg(15), iterSeg) // r15 holds the globals base
	for i, k := range prof.kernels {
		k.setup(b, rng, RegBase0+isa.Reg(i))
	}

	// Outer loop.
	b.Label("main_loop")
	bodyInstance := 0
	for _, ki := range prof.sequence {
		k := prof.kernels[ki]
		instance := bodyInstance
		uniq := func(l string) string {
			return fmt.Sprintf("%s_%d_%s", k.name(), instance, l)
		}
		k.body(b, RegBase0+isa.Reg(ki), uniq)
		bodyInstance++
	}
	b.OpLit(isa.OpADDQ, RegIter, 1, RegIter)
	b.Store(isa.OpSTQ, RegIter, slotState, isa.Reg(15))
	b.Branch(isa.OpBR, isa.RegZero, "main_loop")

	// Out-of-line functions (shared across body instances).
	for _, k := range prof.kernels {
		k.functions(b)
	}

	return b.Build()
}

// MustGenerate is Generate for known-good inputs; it panics on error.
// Intended for tests and examples where the benchmark name is a constant.
func MustGenerate(bench Benchmark, cfg Config) *Program {
	p, err := Generate(bench, cfg)
	if err != nil {
		panic(err)
	}
	return p
}
