package arch

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
)

const (
	codeBase = 0x10000
	dataBase = 0x20000
)

// assemble loads the given instructions at codeBase and returns a ready sim
// with a RW data page at dataBase.
func assemble(t *testing.T, insts []isa.Inst) *Sim {
	t.Helper()
	m := mem.New()
	m.Map(codeBase, mem.PageSize, mem.PermRX)
	m.Map(dataBase, mem.PageSize, mem.PermRW)
	buf := make([]byte, 0, len(insts)*isa.InstBytes)
	for _, inst := range insts {
		w := isa.Encode(inst)
		buf = append(buf, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
	}
	if err := m.WriteBytes(codeBase, buf); err != nil {
		t.Fatalf("load code: %v", err)
	}
	return New(m, codeBase)
}

func run(t *testing.T, s *Sim, max uint64) Event {
	t.Helper()
	n, last, err := s.Run(max)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if n == max && !s.Stopped() {
		t.Fatalf("program did not stop within %d instructions", max)
	}
	return last
}

func TestStraightLineArithmetic(t *testing.T) {
	s := assemble(t, []isa.Inst{
		{Op: isa.OpADDQ, Ra: 31, UseLit: true, Lit: 10, Rc: 1}, // r1 = 10
		{Op: isa.OpADDQ, Ra: 31, UseLit: true, Lit: 3, Rc: 2},  // r2 = 3
		{Op: isa.OpMULQ, Ra: 1, Rb: 2, Rc: 3},                  // r3 = 30
		{Op: isa.OpSUBQ, Ra: 3, Rb: 2, Rc: 4},                  // r4 = 27
		{Op: isa.OpSLL, Ra: 4, UseLit: true, Lit: 2, Rc: 5},    // r5 = 108
		{Op: isa.OpHALT},
	})
	ev := run(t, s, 100)
	if !ev.Halted {
		t.Fatal("expected halt")
	}
	want := map[isa.Reg]uint64{1: 10, 2: 3, 3: 30, 4: 27, 5: 108}
	for r, v := range want {
		if s.Reg(r) != v {
			t.Errorf("r%d = %d, want %d", r, s.Reg(r), v)
		}
	}
	if s.InstRet != 6 {
		t.Errorf("InstRet = %d, want 6", s.InstRet)
	}
}

func TestZeroRegisterIsHardwired(t *testing.T) {
	s := assemble(t, []isa.Inst{
		{Op: isa.OpADDQ, Ra: 31, UseLit: true, Lit: 42, Rc: 31}, // write to zero
		{Op: isa.OpADDQ, Ra: 31, Rb: 31, Rc: 1},                 // r1 = zero + zero
		{Op: isa.OpHALT},
	})
	run(t, s, 10)
	if s.Reg(31) != 0 || s.Reg(1) != 0 {
		t.Errorf("zero register leaked: r31=%d r1=%d", s.Reg(31), s.Reg(1))
	}
}

func TestLoopWithConditionalBranch(t *testing.T) {
	// r1 = 5; r2 = 0; loop: r2 += r1; r1 -= 1; bne r1, loop; halt
	s := assemble(t, []isa.Inst{
		{Op: isa.OpADDQ, Ra: 31, UseLit: true, Lit: 5, Rc: 1},
		{Op: isa.OpADDQ, Ra: 31, UseLit: true, Lit: 0, Rc: 2},
		{Op: isa.OpADDQ, Ra: 2, Rb: 1, Rc: 2},
		{Op: isa.OpSUBQ, Ra: 1, UseLit: true, Lit: 1, Rc: 1},
		{Op: isa.OpBNE, Ra: 1, Disp: -3},
		{Op: isa.OpHALT},
	})
	run(t, s, 100)
	if s.Reg(2) != 15 {
		t.Errorf("sum = %d, want 15", s.Reg(2))
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	s := assemble(t, []isa.Inst{
		// r1 = dataBase (via shifted literal: 0x20000 = 2 << 16)
		{Op: isa.OpADDQ, Ra: 31, UseLit: true, Lit: 2, Rc: 1},
		{Op: isa.OpSLL, Ra: 1, UseLit: true, Lit: 16, Rc: 1},
		{Op: isa.OpADDQ, Ra: 31, UseLit: true, Lit: 99, Rc: 2},
		{Op: isa.OpSTQ, Ra: 2, Rb: 1, Disp: 16},
		{Op: isa.OpLDQ, Ra: 3, Rb: 1, Disp: 16},
		{Op: isa.OpSTL, Ra: 2, Rb: 1, Disp: 32},
		{Op: isa.OpLDL, Ra: 4, Rb: 1, Disp: 32},
		{Op: isa.OpHALT},
	})
	run(t, s, 100)
	if s.Reg(3) != 99 {
		t.Errorf("LDQ result = %d, want 99", s.Reg(3))
	}
	if s.Reg(4) != 99 {
		t.Errorf("LDL result = %d, want 99", s.Reg(4))
	}
	if v, _ := s.Mem.ReadQ(dataBase + 16); v != 99 {
		t.Errorf("memory[+16] = %d, want 99", v)
	}
}

func TestLDLSignExtends(t *testing.T) {
	s := assemble(t, []isa.Inst{
		{Op: isa.OpADDQ, Ra: 31, UseLit: true, Lit: 2, Rc: 1},
		{Op: isa.OpSLL, Ra: 1, UseLit: true, Lit: 16, Rc: 1},
		{Op: isa.OpSUBQ, Ra: 31, UseLit: true, Lit: 1, Rc: 2}, // r2 = -1
		{Op: isa.OpSTL, Ra: 2, Rb: 1},
		{Op: isa.OpLDL, Ra: 3, Rb: 1},
		{Op: isa.OpHALT},
	})
	run(t, s, 100)
	if s.Reg(3) != ^uint64(0) {
		t.Errorf("LDL did not sign-extend: %#x", s.Reg(3))
	}
}

func TestCallAndReturn(t *testing.T) {
	// bsr r26, func; halt; func: r1 = 7; ret (r26)
	s := assemble(t, []isa.Inst{
		{Op: isa.OpBSR, Ra: 26, Disp: 1},                      // to index 2
		{Op: isa.OpHALT},                                      // return lands here
		{Op: isa.OpADDQ, Ra: 31, UseLit: true, Lit: 7, Rc: 1}, // func
		{Op: isa.OpRET, Rb: 26, Rc: 31},
	})
	run(t, s, 100)
	if s.Reg(1) != 7 {
		t.Errorf("r1 = %d, want 7 (function did not run)", s.Reg(1))
	}
	if s.Reg(26) != codeBase+4 {
		t.Errorf("link = %#x, want %#x", s.Reg(26), codeBase+4)
	}
}

func TestIndirectJump(t *testing.T) {
	// r1 = codeBase + 4*4 (the halt); jmp (r1); bad: r2 = 1
	s := assemble(t, []isa.Inst{
		{Op: isa.OpADDQ, Ra: 31, UseLit: true, Lit: 1, Rc: 1},
		{Op: isa.OpSLL, Ra: 1, UseLit: true, Lit: 16, Rc: 1},  // r1 = 0x10000
		{Op: isa.OpADDQ, Ra: 1, UseLit: true, Lit: 20, Rc: 1}, // +20 = idx 5
		{Op: isa.OpJMP, Rb: 1, Rc: 31},                        // jump
		{Op: isa.OpADDQ, Ra: 31, UseLit: true, Lit: 1, Rc: 2}, // skipped
		{Op: isa.OpHALT},
	})
	run(t, s, 100)
	if s.Reg(2) != 0 {
		t.Error("indirect jump fell through")
	}
}

func TestCMOV(t *testing.T) {
	s := assemble(t, []isa.Inst{
		{Op: isa.OpADDQ, Ra: 31, UseLit: true, Lit: 5, Rc: 1}, // r1 = 5
		{Op: isa.OpADDQ, Ra: 31, UseLit: true, Lit: 9, Rc: 2}, // r2 = 9
		{Op: isa.OpCMOVEQ, Ra: 1, Rb: 2, Rc: 3},               // r1!=0: no move
		{Op: isa.OpCMOVNE, Ra: 1, Rb: 2, Rc: 4},               // r1!=0: move
		{Op: isa.OpHALT},
	})
	run(t, s, 10)
	if s.Reg(3) != 0 {
		t.Errorf("CMOVEQ moved when it should not: r3=%d", s.Reg(3))
	}
	if s.Reg(4) != 9 {
		t.Errorf("CMOVNE did not move: r4=%d", s.Reg(4))
	}
}

func TestAccessFaultException(t *testing.T) {
	s := assemble(t, []isa.Inst{
		{Op: isa.OpADDQ, Ra: 31, UseLit: true, Lit: 1, Rc: 1},
		{Op: isa.OpSLL, Ra: 1, UseLit: true, Lit: 40, Rc: 1}, // far unmapped address
		{Op: isa.OpLDQ, Ra: 2, Rb: 1},
		{Op: isa.OpHALT},
	})
	_, last, err := s.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if last.Exception != ExcAccessFault {
		t.Fatalf("exception = %v, want access-fault", last.Exception)
	}
	if !s.Excepted || s.Halted {
		t.Error("simulator should be stopped by exception")
	}
	if last.ExcAddr != 1<<40 {
		t.Errorf("ExcAddr = %#x", last.ExcAddr)
	}
	// Stepping after an exception repeats the stopped event.
	ev := s.Step()
	if ev.Exception != ExcAccessFault {
		t.Error("Step after exception should report the exception")
	}
	if _, _, err := s.Run(1); err != ErrStopped {
		t.Errorf("Run after stop = %v, want ErrStopped", err)
	}
}

func TestAlignmentException(t *testing.T) {
	s := assemble(t, []isa.Inst{
		{Op: isa.OpADDQ, Ra: 31, UseLit: true, Lit: 2, Rc: 1},
		{Op: isa.OpSLL, Ra: 1, UseLit: true, Lit: 16, Rc: 1},
		{Op: isa.OpLDQ, Ra: 2, Rb: 1, Disp: 4}, // misaligned
		{Op: isa.OpHALT},
	})
	_, last, _ := s.Run(100)
	if last.Exception != ExcAlignment {
		t.Fatalf("exception = %v, want alignment", last.Exception)
	}
}

func TestOverflowException(t *testing.T) {
	s := assemble(t, []isa.Inst{
		{Op: isa.OpADDQ, Ra: 31, UseLit: true, Lit: 1, Rc: 1},
		{Op: isa.OpSLL, Ra: 1, UseLit: true, Lit: 62, Rc: 1}, // big positive
		{Op: isa.OpADDQV, Ra: 1, Rb: 1, Rc: 2},               // overflows
		{Op: isa.OpHALT},
	})
	_, last, _ := s.Run(100)
	if last.Exception != ExcOverflow {
		t.Fatalf("exception = %v, want overflow", last.Exception)
	}
	// Non-trapping variant must not trap.
	s2 := assemble(t, []isa.Inst{
		{Op: isa.OpADDQ, Ra: 31, UseLit: true, Lit: 1, Rc: 1},
		{Op: isa.OpSLL, Ra: 1, UseLit: true, Lit: 62, Rc: 1},
		{Op: isa.OpADDQ, Ra: 1, Rb: 1, Rc: 2},
		{Op: isa.OpHALT},
	})
	_, last2, _ := s2.Run(100)
	if last2.Exception != ExcNone {
		t.Errorf("non-trapping add raised %v", last2.Exception)
	}
}

func TestIllegalInstruction(t *testing.T) {
	m := mem.New()
	m.Map(codeBase, mem.PageSize, mem.PermRX)
	// 0x07<<26 is an undefined primary opcode.
	word := uint32(0x07) << 26
	if err := m.WriteBytes(codeBase, []byte{byte(word), byte(word >> 8), byte(word >> 16), byte(word >> 24)}); err != nil {
		t.Fatal(err)
	}
	s := New(m, codeBase)
	ev := s.Step()
	if ev.Exception != ExcIllegalInstruction {
		t.Fatalf("exception = %v, want illegal-instruction", ev.Exception)
	}
}

func TestFetchFromUnmappedFaults(t *testing.T) {
	m := mem.New()
	s := New(m, 0x5000)
	ev := s.Step()
	if ev.Exception != ExcAccessFault {
		t.Fatalf("exception = %v, want access-fault on fetch", ev.Exception)
	}
}

func TestFetchFromNonExecFaults(t *testing.T) {
	m := mem.New()
	m.Map(codeBase, mem.PageSize, mem.PermRW) // mapped but not executable
	s := New(m, codeBase)
	if ev := s.Step(); ev.Exception != ExcAccessFault {
		t.Fatalf("exception = %v, want access-fault", ev.Exception)
	}
}

func TestExceptionPreservesState(t *testing.T) {
	s := assemble(t, []isa.Inst{
		{Op: isa.OpADDQ, Ra: 31, UseLit: true, Lit: 7, Rc: 1},
		{Op: isa.OpADDQ, Ra: 31, UseLit: true, Lit: 1, Rc: 2},
		{Op: isa.OpSLL, Ra: 2, UseLit: true, Lit: 45, Rc: 2},
		{Op: isa.OpSTQ, Ra: 1, Rb: 2}, // store to unmapped: faults
		{Op: isa.OpHALT},
	})
	before := s.Mem.Hash()
	_, last, _ := s.Run(100)
	if last.Exception != ExcAccessFault {
		t.Fatalf("exception = %v", last.Exception)
	}
	if last.PC != codeBase+3*4 {
		t.Errorf("faulting PC = %#x, want %#x", last.PC, codeBase+3*4)
	}
	if s.PC != codeBase+3*4 {
		t.Error("PC advanced past faulting instruction")
	}
	if s.Mem.Hash() != before {
		t.Error("memory modified by faulting store")
	}
}

func TestSnapshotRestore(t *testing.T) {
	s := assemble(t, []isa.Inst{
		{Op: isa.OpADDQ, Ra: 31, UseLit: true, Lit: 1, Rc: 1},
		{Op: isa.OpADDQ, Ra: 1, UseLit: true, Lit: 1, Rc: 1},
		{Op: isa.OpADDQ, Ra: 1, UseLit: true, Lit: 1, Rc: 1},
		{Op: isa.OpHALT},
	})
	s.Step()
	snap := s.Snapshot()
	s.Step()
	s.Step()
	if s.Reg(1) != 3 {
		t.Fatalf("r1 = %d before restore", s.Reg(1))
	}
	s.Restore(snap)
	if s.Reg(1) != 1 || s.PC != codeBase+4 || s.InstRet != 1 {
		t.Errorf("restore failed: r1=%d pc=%#x ret=%d", s.Reg(1), s.PC, s.InstRet)
	}
	// Re-execution after restore reproduces the original result.
	s.Step()
	s.Step()
	if s.Reg(1) != 3 {
		t.Errorf("replay after restore: r1=%d, want 3", s.Reg(1))
	}
}

func TestEventFields(t *testing.T) {
	s := assemble(t, []isa.Inst{
		{Op: isa.OpADDQ, Ra: 31, UseLit: true, Lit: 2, Rc: 1},
		{Op: isa.OpSLL, Ra: 1, UseLit: true, Lit: 16, Rc: 1},
		{Op: isa.OpSTQ, Ra: 1, Rb: 1, Disp: 8},
		{Op: isa.OpLDQ, Ra: 2, Rb: 1, Disp: 8},
		{Op: isa.OpBEQ, Ra: 31, Disp: 0}, // taken (zero == 0)
		{Op: isa.OpHALT},
	})
	ev := s.Step() // addq
	if !ev.DestValid || ev.Dest != 1 || ev.DestVal != 2 {
		t.Errorf("addq event: %+v", ev)
	}
	s.Step() // sll
	ev = s.Step()
	if !ev.IsStore || ev.MemAddr != dataBase+8 || ev.StoreVal != dataBase || ev.StoreSize != 8 {
		t.Errorf("store event: %+v", ev)
	}
	ev = s.Step()
	if !ev.IsLoad || ev.MemAddr != dataBase+8 || ev.DestVal != dataBase {
		t.Errorf("load event: %+v", ev)
	}
	ev = s.Step()
	if !ev.IsBranch || !ev.Taken || ev.NextPC != codeBase+5*4 {
		t.Errorf("branch event: %+v", ev)
	}
}

func TestExceptionKindStrings(t *testing.T) {
	kinds := []ExceptionKind{ExcNone, ExcAccessFault, ExcAlignment, ExcOverflow, ExcIllegalInstruction, ExceptionKind(99)}
	seen := make(map[string]bool)
	for _, k := range kinds {
		str := k.String()
		if str == "" || seen[str] {
			t.Errorf("bad or duplicate string for %d: %q", k, str)
		}
		seen[str] = true
	}
}

func TestIndirectJumpMasksLowBits(t *testing.T) {
	// Alpha jump targets clear the low two bits; a corrupted link with
	// bit 0 set must still land on the instruction boundary.
	s := assemble(t, []isa.Inst{
		{Op: isa.OpADDQ, Ra: 31, UseLit: true, Lit: 1, Rc: 1},
		{Op: isa.OpSLL, Ra: 1, UseLit: true, Lit: 16, Rc: 1},  // r1 = 0x10000
		{Op: isa.OpADDQ, Ra: 1, UseLit: true, Lit: 23, Rc: 1}, // +23: low bits dirty
		{Op: isa.OpJMP, Rb: 1, Rc: 31},                        // lands at +20 (idx 5)
		{Op: isa.OpADDQ, Ra: 31, UseLit: true, Lit: 9, Rc: 2}, // skipped
		{Op: isa.OpHALT},
	})
	run(t, s, 100)
	if s.Reg(2) != 0 {
		t.Error("low target bits not masked")
	}
}

func TestCMOVWithLiteral(t *testing.T) {
	s := assemble(t, []isa.Inst{
		{Op: isa.OpCMOVEQ, Ra: 31, UseLit: true, Lit: 77, Rc: 1}, // zero==0: move literal
		{Op: isa.OpHALT},
	})
	run(t, s, 10)
	if s.Reg(1) != 77 {
		t.Errorf("cmov literal = %d, want 77", s.Reg(1))
	}
}

func TestRunExactBudget(t *testing.T) {
	s := assemble(t, []isa.Inst{
		{Op: isa.OpADDQ, Ra: 1, UseLit: true, Lit: 1, Rc: 1},
		{Op: isa.OpBR, Ra: 31, Disp: -2}, // tight infinite loop
	})
	n, _, err := s.Run(1000)
	if err != nil || n != 1000 {
		t.Fatalf("ran %d, err %v", n, err)
	}
	if s.InstRet != 1000 {
		t.Errorf("InstRet = %d", s.InstRet)
	}
}

func TestSetRegZeroDiscarded(t *testing.T) {
	s := assemble(t, []isa.Inst{{Op: isa.OpHALT}})
	s.SetReg(isa.RegZero, 99)
	if s.Reg(isa.RegZero) != 0 {
		t.Error("zero register wrote through")
	}
}
