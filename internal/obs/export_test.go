package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func exportRegistry() *Registry {
	r := NewRegistry()
	r.Counter("campaign_trials_total").Add(42)
	r.Gauge("campaign_trials_per_second").Set(123.5)
	h := r.Hist("pipeline_rob_occupancy")
	h.Observe(0)
	h.Observe(5)
	r.Timer("campaign_wall").Observe(1500 * time.Millisecond)
	return r
}

func TestWriteJSONRoundTrips(t *testing.T) {
	var b strings.Builder
	if err := exportRegistry().Snapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal([]byte(b.String()), &back); err != nil {
		t.Fatalf("exported JSON does not parse: %v", err)
	}
	if len(back.Metrics) != 4 {
		t.Fatalf("round-trip kept %d metrics, want 4", len(back.Metrics))
	}
	if m, ok := back.Get("campaign_trials_total"); !ok || m.Value != 42 {
		t.Fatalf("counter lost in round trip: %+v", m)
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	if err := exportRegistry().Snapshot().WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "name,kind,value,count\n") {
		t.Fatalf("missing header: %q", out)
	}
	for _, want := range []string{
		"campaign_trials_total,counter,42,0",
		"campaign_trials_per_second,gauge,123.5,0",
		"pipeline_rob_occupancy,histogram,5,2",
		"pipeline_rob_occupancy{le=0},bucket,1,",
		"campaign_wall,timer,1.5,1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing %q in:\n%s", want, out)
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	var b strings.Builder
	if err := exportRegistry().Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE campaign_trials_total counter\ncampaign_trials_total 42\n",
		"# TYPE campaign_trials_per_second gauge\ncampaign_trials_per_second 123.5\n",
		"# TYPE pipeline_rob_occupancy histogram\n",
		"pipeline_rob_occupancy_bucket{le=\"0\"} 1",
		"pipeline_rob_occupancy_bucket{le=\"+Inf\"} 2",
		"pipeline_rob_occupancy_sum 5\npipeline_rob_occupancy_count 2\n",
		"campaign_wall_bucket{le=\"+Inf\"} 1",
		"campaign_wall_sum 1.5\ncampaign_wall_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q in:\n%s", want, out)
		}
	}
}

func TestWriteFileFormats(t *testing.T) {
	dir := t.TempDir()
	snap := exportRegistry().Snapshot()
	cases := []struct {
		file string
		want string // sniff string proving the right format was chosen
	}{
		{"m.json", "\"metrics\""},
		{"m.csv", "name,kind,value,count"},
		{"m.prom", "# TYPE"},
		{"metrics", "# TYPE"}, // extension-less defaults to Prometheus text
	}
	for _, c := range cases {
		path := filepath.Join(dir, c.file)
		if err := snap.WriteFile(path); err != nil {
			t.Fatalf("WriteFile(%s): %v", c.file, err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(data), c.want) {
			t.Errorf("%s: expected %q in output:\n%s", c.file, c.want, data)
		}
	}
}

func TestWriteToUnknownFormat(t *testing.T) {
	var b strings.Builder
	if err := (Snapshot{}).WriteTo(&b, "xml"); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestPromName(t *testing.T) {
	if got := promName("vm.pool-hits/total"); got != "vm_pool_hits_total" {
		t.Fatalf("promName = %q", got)
	}
	if got := promName("9lives"); got != "_lives" {
		t.Fatalf("promName leading digit = %q", got)
	}
}
