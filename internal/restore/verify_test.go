package restore

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// branchLoop builds a loop whose conditional branch is steered by r12,
// which is never renamed away: corrupting r12 flips upcoming committed
// branch outcomes, which the event log can catch during replay.
func branchLoop(t *testing.T) *workload.Program {
	t.Helper()
	b := workload.NewBuilder("branchloop")
	b.AllocData("data", make([]byte, 4096), mem.PermRW)
	b.LoadImm(isa.Reg(12), 0)
	b.LoadImm(isa.Reg(10), workload.DataBase)
	b.Label("loop")
	b.Op(isa.OpADDQ, 3, 12, 4)
	b.Branch(isa.OpBNE, 12, "rare")
	b.OpLit(isa.OpADDQ, 3, 1, 3)
	b.Branch(isa.OpBR, isa.RegZero, "join")
	b.Label("rare")
	b.OpLit(isa.OpADDQ, 3, 2, 3)
	b.Label("join")
	b.Store(isa.OpSTQ, 3, 0, 10)
	b.Branch(isa.OpBR, isa.RegZero, "loop")
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestEventLogDetectionWithVerification(t *testing.T) {
	prog := branchLoop(t)
	m, err := prog.NewMemory()
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := pipeline.New(pipeline.DefaultConfig(), m, prog.Entry)
	if err != nil {
		t.Fatal(err)
	}
	// Delayed policy lets the corrupted branch COMMIT its wrong outcome
	// into the event log before rollback; VerifyDetections enables the
	// Section 3.2.3 third execution.
	proc := New(pipe, Config{
		Interval:         100,
		Policy:           PolicyDelayed,
		VerifyDetections: true,
	})
	if _, err := proc.Run(20_000, 2_000_000); err != nil {
		t.Fatal(err)
	}

	pipe.CorruptArchReg(isa.Reg(12), 3)

	rep, err := proc.Run(60_000, 6_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DetectedErrors == 0 {
		t.Fatal("event log did not detect the corrupted branch outcomes")
	}
	if rep.VerifiedDetections == 0 {
		t.Errorf("third execution did not confirm the detection: %+v", rep)
	}
	if rep.ReplayCorruptions != 0 {
		t.Errorf("no replay was corrupted, yet %d reported", rep.ReplayCorruptions)
	}

	// Recovery must leave state on the golden path.
	want, _ := goldenRegs(t, prog, rep.Retired)
	if pipe.ArchRegs() != want {
		t.Error("state corrupt after verified detection and recovery")
	}
}

func TestVerificationOffByDefault(t *testing.T) {
	prog := branchLoop(t)
	m, err := prog.NewMemory()
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := pipeline.New(pipeline.DefaultConfig(), m, prog.Entry)
	if err != nil {
		t.Fatal(err)
	}
	proc := New(pipe, Config{Interval: 100, Policy: PolicyDelayed})
	if _, err := proc.Run(20_000, 2_000_000); err != nil {
		t.Fatal(err)
	}
	pipe.CorruptArchReg(isa.Reg(12), 3)
	rep, err := proc.Run(60_000, 6_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.VerifiedDetections != 0 || rep.ReplayCorruptions != 0 {
		t.Errorf("verification ran despite being disabled: %+v", rep)
	}
}

func TestErrorLogRecords(t *testing.T) {
	prog := branchLoop(t)
	m, err := prog.NewMemory()
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := pipeline.New(pipeline.DefaultConfig(), m, prog.Entry)
	if err != nil {
		t.Fatal(err)
	}
	proc := New(pipe, Config{Interval: 100, Policy: PolicyDelayed})
	if _, err := proc.Run(20_000, 2_000_000); err != nil {
		t.Fatal(err)
	}
	if len(proc.ErrorLog()) != 0 {
		t.Fatal("error log not empty on a clean run")
	}
	pipe.CorruptArchReg(isa.Reg(12), 3)
	rep, err := proc.Run(60_000, 6_000_000)
	if err != nil {
		t.Fatal(err)
	}
	log := proc.ErrorLog()
	if uint64(len(log)) != rep.DetectedErrors || len(log) == 0 {
		t.Fatalf("error log has %d records for %d detections", len(log), rep.DetectedErrors)
	}
	rec := log[0]
	if rec.OriginalTaken == rec.ReplayTaken {
		t.Error("record does not describe a divergence")
	}
	if rec.PC == 0 || rec.Cycle == 0 {
		t.Errorf("record missing location: %+v", rec)
	}
	// The returned slice is a copy.
	log[0].PC = 0xDEAD
	if proc.ErrorLog()[0].PC == 0xDEAD {
		t.Error("ErrorLog exposes internal state")
	}
}

func TestLoadValueQueueDetectsDataDivergence(t *testing.T) {
	// r12 steers both a data chain (store->load, committed BEFORE the
	// branch each iteration) and a conditional branch. Under the delayed
	// policy the corrupted iteration commits fully; during replay the
	// load value queue sees the data divergence at an earlier index than
	// the event log sees the branch divergence.
	build := func() (*Processor, *pipeline.Pipeline) {
		prog := asm.MustAssemble("lvq", `
			.data buf 4096
			.base r10 buf
			.imm  r12 0
		loop:
			addq r12, #0, r4     ; r4 = r12 (data use, before the branch)
			stq  r4, 8(r10)
			ldq  r5, 8(r10)      ; r12-derived value flows through memory
			addq r3, r5, r3
			bne  r12, rare       ; steering branch, after the loads
			addq r3, #1, r3
			br   join
		rare:
			addq r3, #2, r3
		join:
			stq  r3, 16(r10)
			br   loop
		`)
		m, err := prog.NewMemory()
		if err != nil {
			t.Fatal(err)
		}
		pipe, err := pipeline.New(pipeline.DefaultConfig(), m, prog.Entry)
		if err != nil {
			t.Fatal(err)
		}
		proc := New(pipe, Config{
			Interval:      100,
			Policy:        PolicyDelayed,
			LogLoadValues: true,
		})
		return proc, pipe
	}

	proc, pipe := build()
	if _, err := proc.Run(20_000, 2_000_000); err != nil {
		t.Fatal(err)
	}
	pipe.CorruptArchReg(isa.Reg(12), 3)
	rep, err := proc.Run(60_000, 6_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DetectedErrors == 0 {
		t.Fatal("no detection with load value queue enabled")
	}
	log := proc.ErrorLog()
	if len(log) == 0 {
		t.Fatal("empty error log")
	}
	// The first detection must be the LVQ's data record (no branch
	// outcomes recorded), proving the value comparison fired before the
	// event log's branch comparison could.
	first := log[0]
	if first.OriginalTaken || first.ReplayTaken {
		t.Errorf("first detection was a branch record, want a load-value record: %+v", first)
	}
}
