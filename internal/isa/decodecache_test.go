package isa

import (
	"math/rand"
	"testing"
)

// TestDecodeCacheHitsMatchDecode: every aligned in-range lookup with the
// original word must hit and return exactly what Decode returns.
func TestDecodeCacheHitsMatchDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	code := make([]uint32, 256)
	for i := range code {
		code[i] = Encode(randomInst(rng))
	}
	const base = 0x1_0000
	d := NewDecodeCache(base, code)
	if d.Len() != len(code) {
		t.Fatalf("Len = %d, want %d", d.Len(), len(code))
	}
	for i, w := range code {
		pc := uint64(base + i*InstBytes)
		inst, ok := d.Lookup(pc, w)
		if !ok {
			t.Fatalf("miss at pc %#x", pc)
		}
		if inst != Decode(w) {
			t.Fatalf("pc %#x: cached %+v != Decode %+v", pc, inst, Decode(w))
		}
	}
}

// TestDecodeCacheMisses: unaligned pcs, pcs outside the image, and words
// that no longer match the image must all miss — that is the soundness
// condition that lets faulty pipelines share the cache.
func TestDecodeCacheMisses(t *testing.T) {
	code := []uint32{0x47ff041f, 0x43e01401}
	const base = 0x2_0000
	d := NewDecodeCache(base, code)

	cases := []struct {
		name string
		pc   uint64
		word uint32
	}{
		{"unaligned", base + 1, code[0]},
		{"unaligned mid", base + 2, code[0]},
		{"below base", base - InstBytes, code[0]},
		{"past end", base + uint64(len(code))*InstBytes, code[0]},
		{"wild pc", 0, code[0]},
		{"corrupted word", base, code[0] ^ 1},
		{"word from other slot", base, code[1]},
	}
	for _, c := range cases {
		if _, ok := d.Lookup(c.pc, c.word); ok {
			t.Errorf("%s: Lookup(%#x, %#x) hit, want miss", c.name, c.pc, c.word)
		}
	}

	// A pc far below base must not alias back into range through the
	// unsigned subtraction.
	var wildLow uint64 = base
	wildLow -= 1 << 40
	if _, ok := d.Lookup(wildLow, code[0]); ok {
		t.Error("huge underflow pc hit the cache")
	}
}

// TestDecodeCacheCopiesCode: mutating the caller's code slice after
// construction must not affect the cache.
func TestDecodeCacheCopiesCode(t *testing.T) {
	code := []uint32{0x47ff041f}
	d := NewDecodeCache(0, code)
	orig := code[0]
	code[0] ^= 0xffff
	inst, ok := d.Lookup(0, orig)
	if !ok || inst != Decode(orig) {
		t.Fatal("cache was affected by caller mutating the code slice")
	}
	if _, ok := d.Lookup(0, code[0]); ok {
		t.Fatal("mutated word should miss")
	}
}
