// Package fixture exercises the bitwidth diagnostics.
package fixture

type StateSpace struct{}

func (s *StateSpace) Register(name string, kind, class int, word *uint64, bits int) {}

func overShift(x uint32) uint32 {
	return x << 32 // want "shift << 32 of a 32-bit value is always zero"
}

func overShiftRight(x uint16) uint16 {
	return x >> 16 // want "shift >> 16 of a 16-bit value is always zero"
}

func overShiftAssign(x uint8) uint8 {
	x <<= 8 // want "shift << 8 of a 8-bit value is always zero"
	return x
}

func deadMask(b uint8) uint64 {
	return uint64(b) & 0x100 // want "mask 0x100 has bits above bit 7"
}

func wideMask(b uint16) uint64 {
	return uint64(b) & 0x1FFFF // want "mask 0x1ffff has bits above bit 15"
}

func bogusSignExtend(x uint32) uint64 {
	return uint64(int32(x)) // want "conversion chain sign-extends an unsigned 32-bit value"
}

func badRegister(s *StateSpace, w *uint64) {
	s.Register("w", 0, 0, w, 65) // want "Register bit count 65 is outside \[1,64\]"
	s.Register("w", 0, 0, w, 0)  // want "Register bit count 0 is outside \[1,64\]"
}
