package pipeline

import "repro/internal/isa"

// Control words: after decode, instructions travel down the pipeline as a
// packed 52-bit "control word" held in ROB latches. These are exactly the
// "control word latches within the pipeline" that the paper's low-hanging-
// fruit hardening protects with parity (Section 5.2.2): a bit flip here
// silently changes the opcode, a register specifier, or the displacement of
// an in-flight instruction.
//
// Layout (low to high):
//
//	[5:0]   op        (isa.Op numeric value)
//	[10:6]  ra
//	[15:11] rb
//	[20:16] rc
//	[21]    useLit
//	[29:22] lit
//	[50:30] disp (21-bit two's complement)
//	[51]    fetchFault (pseudo-op: instruction fetch itself faulted)
const ctlBits = 52

const ctlFetchFaultBit = 51

func packCtl(inst isa.Inst) uint64 {
	w := uint64(inst.Op) & 0x3F
	w |= uint64(inst.Ra&31) << 6
	w |= uint64(inst.Rb&31) << 11
	w |= uint64(inst.Rc&31) << 16
	if inst.UseLit {
		w |= 1 << 21
	}
	w |= uint64(inst.Lit) << 22
	w |= (uint64(uint32(inst.Disp)) & 0x1FFFFF) << 30
	return w
}

func packFetchFault() uint64 { return 1 << ctlFetchFaultBit }

func ctlIsFetchFault(w uint64) bool { return w&(1<<ctlFetchFaultBit) != 0 }

func unpackCtl(w uint64) isa.Inst {
	op := isa.Op(w & 0x3F)
	if !isa.ValidOp(op) {
		// A corrupted opcode field becomes an undefined operation; the
		// pipeline raises an illegal-instruction exception when it
		// reaches commit, just as corrupted decode latches do in real
		// hardware.
		return isa.Inst{}
	}
	disp21 := uint32((w >> 30) & 0x1FFFFF)
	// Sign-extend 21 bits.
	disp := int32(disp21<<11) >> 11
	return isa.Inst{
		Op:     op,
		Ra:     isa.Reg((w >> 6) & 31),
		Rb:     isa.Reg((w >> 11) & 31),
		Rc:     isa.Reg((w >> 16) & 31),
		UseLit: w&(1<<21) != 0,
		Lit:    uint8((w >> 22) & 0xFF),
		Disp:   disp,
	}
}
