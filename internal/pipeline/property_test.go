package pipeline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/workload"
)

// Property tests on the pieces fault injection leans on hardest: the packed
// control words that flips mutate, and the state space sampling machinery.

func TestCtlUnpackNeverPanics(t *testing.T) {
	// Any 52-bit pattern — i.e. any corrupted control word — must unpack
	// to SOME instruction (possibly OpInvalid) without panicking.
	f := func(w uint64) bool {
		inst := unpackCtl(w & (1<<ctlBits - 1))
		_ = inst.String()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50000}); err != nil {
		t.Error(err)
	}
}

func TestCtlPackIsInverseOfUnpackOnValid(t *testing.T) {
	// For words whose opcode field is valid, pack(unpack(w)) preserves
	// the fields the instruction's format actually uses.
	f := func(w uint64) bool {
		w &= 1<<ctlBits - 1
		w &^= 1 << ctlFetchFaultBit
		inst := unpackCtl(w)
		if inst.Op == 0 {
			return true // invalid opcodes are not round-trippable
		}
		again := unpackCtl(packCtl(inst))
		return again == inst
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50000}); err != nil {
		t.Error(err)
	}
}

func TestNthBitBijectionSample(t *testing.T) {
	// NthBit must hit every element at least once when sweeping the flat
	// index space coarsely, and adjacent indices map to adjacent bits.
	p := newBenchPipeline(t, workload.Gzip, DefaultConfig())
	s := p.State()
	total := s.TotalBits(false)

	seen := make(map[int]bool)
	// Stride 3 is below the smallest element width, so every element
	// must be visited.
	for n := uint64(0); n < total; n += 3 {
		ref, ok := s.NthBit(n)
		if !ok {
			t.Fatalf("NthBit(%d) failed", n)
		}
		if int(ref.Bit) >= int(s.Elements()[ref.Elem].Bits) {
			t.Fatalf("bit %d outside element %s width %d",
				ref.Bit, s.Elements()[ref.Elem].Name, s.Elements()[ref.Elem].Bits)
		}
		seen[ref.Elem] = true
	}
	if len(seen) != len(s.Elements()) {
		t.Errorf("sweep touched only %d of %d elements", len(seen), len(s.Elements()))
	}
}

func TestFlipIsInvolution(t *testing.T) {
	p := newBenchPipeline(t, workload.Gzip, DefaultConfig())
	p.RunCycles(1000)
	s := p.State()
	rng := rand.New(rand.NewSource(8))
	before := s.Snapshot()
	// Any sequence of flips applied twice in reverse is the identity.
	var refs []BitRef
	for i := 0; i < 100; i++ {
		ref, _ := s.NthBit(uint64(rng.Int63n(int64(s.TotalBits(false)))))
		refs = append(refs, ref)
		s.Flip(ref)
	}
	for i := len(refs) - 1; i >= 0; i-- {
		s.Flip(refs[i])
	}
	after := s.Snapshot()
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("word %d (%s) not restored", i, s.Elements()[i].Name)
		}
	}
}

func TestLatchFractionPlausible(t *testing.T) {
	// Section 5.1.2 relies on latches being a substantial share of the
	// state. Sanity-check the ratio stays in a hardware-plausible band.
	p := newBenchPipeline(t, workload.Gzip, DefaultConfig())
	s := p.State()
	frac := float64(s.TotalBits(true)) / float64(s.TotalBits(false))
	if frac < 0.4 || frac > 0.95 {
		t.Errorf("latch fraction %.2f outside plausible band", frac)
	}
	t.Logf("latch bits: %.1f%% of %d", 100*frac, s.TotalBits(false))
}
