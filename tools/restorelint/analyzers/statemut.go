package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/tools/restorelint/lint"
)

// StateMut confines writes to registered machine state. Every uint64 word a
// register() method hands to StateSpace.Register is hardware state that
// fault-injection campaigns enumerate, flip, hash, and snapshot; an
// unaudited write path is a simulator bug factory (state changing outside
// the cycle loop breaks golden-run comparison) and an injection blind spot.
//
// A write to a registered field is allowed only in:
//
//   - a method of the struct that declares the field (the structure's own
//     queue/alloc/reset discipline), or
//   - a function named in a `//restorelint:writers f g h` directive on the
//     declaring struct — the ownership matrix of pipeline stages that are
//     entitled to drive those latches, or
//   - the StateSpace injection API itself, which reaches the words through
//     registered pointers rather than selectors and is therefore out of
//     scope by construction.
//
// Taking a registered field's address outside those owners is flagged too:
// a leaked pointer is an invisible write path.
var StateMut = &lint.Analyzer{
	Name: "statemut",
	Doc:  "flags writes to StateSpace-registered fields outside the owning struct or its declared writers",
	Run:  runStateMut,
}

func runStateMut(pass *lint.Pass) {
	idx := buildStateIndex(pass.Pkg)
	if len(idx.registered) == 0 {
		return
	}
	writers := collectWriterDirectives(pass.Pkg)

	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if n.Tok == token.DEFINE {
					return true // fresh locals never alias registered words
				}
				for _, lhs := range n.Lhs {
					checkStateWrite(pass, idx, writers, lhs)
				}
			case *ast.IncDecStmt:
				checkStateWrite(pass, idx, writers, n.X)
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					checkStateAddr(pass, idx, writers, n)
				}
			}
			return true
		})
	}
}

// checkStateWrite resolves one assignment target and reports it when it hits
// registered state from outside the owners.
func checkStateWrite(pass *lint.Pass, idx *stateIndex, writers map[string]map[string]bool, lhs ast.Expr) {
	info := pass.Pkg.Info

	// Field-level write: p.rob.flags[i] = v, p.fetchPC = v, ...
	if v := fieldVarOf(info, lhs); v != nil && idx.registered[v] {
		owner := idx.fieldOwner[v]
		if !allowedWriter(pass, writers, owner, lhs.Pos()) {
			reportStateWrite(pass, lhs.Pos(), owner, v.Name(), writers[owner])
		}
		return
	}

	// Whole-struct write through a field or pointer: p.free = zero,
	// *q = fetchQueue{}. Every registered word of the struct is rewritten.
	target := lhs
	if star, ok := target.(*ast.StarExpr); ok {
		target = star.X
	}
	if _, isSel := lhs.(*ast.SelectorExpr); !isSel {
		if _, isStar := lhs.(*ast.StarExpr); !isStar {
			return
		}
	}
	tv, ok := info.Types[target]
	if !ok {
		return
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return
	}
	name := named.Obj().Name()
	if idx.hasState[name] && !allowedWriter(pass, writers, name, lhs.Pos()) {
		reportStateWrite(pass, lhs.Pos(), name, "(entire struct)", writers[name])
	}
}

// checkStateAddr flags address-of escapes of registered fields outside the
// owners (Register calls themselves live inside owner methods).
func checkStateAddr(pass *lint.Pass, idx *stateIndex, writers map[string]map[string]bool, un *ast.UnaryExpr) {
	v := fieldVarOf(pass.Pkg.Info, un.X)
	if v == nil || !idx.registered[v] {
		return
	}
	owner := idx.fieldOwner[v]
	if !allowedWriter(pass, writers, owner, un.Pos()) {
		pass.Reportf(un.Pos(),
			"address of registered state field %s.%s escapes outside its owners; a leaked pointer bypasses the StateSpace write discipline",
			owner, v.Name())
	}
}

func allowedWriter(pass *lint.Pass, writers map[string]map[string]bool, owner string, pos token.Pos) bool {
	fd := pass.Pkg.EnclosingFunc(pos)
	if fd == nil {
		return false
	}
	if recvTypeName(fd) == owner {
		return true
	}
	return writers[owner][fd.Name.Name]
}

func reportStateWrite(pass *lint.Pass, pos token.Pos, owner, field string, allowed map[string]bool) {
	var names []string
	for n := range allowed {
		names = append(names, n)
	}
	sort.Strings(names)
	hint := "none declared"
	if len(names) > 0 {
		hint = strings.Join(names, ", ")
	}
	pass.Reportf(pos,
		"write to registered state %s.%s outside its owners (allowed writers: %s); route it through a %s method or declare it with //restorelint:writers on %s",
		owner, field, hint, owner, owner)
}

// collectWriterDirectives parses `//restorelint:writers a b c` directives
// from struct type declarations: type name -> allowed function names.
func collectWriterDirectives(pkg *lint.Package) map[string]map[string]bool {
	out := make(map[string]map[string]bool)
	record := func(name string, doc *ast.CommentGroup) {
		if doc == nil {
			return
		}
		for _, c := range doc.List {
			rest, ok := strings.CutPrefix(strings.TrimPrefix(c.Text, "//"), "restorelint:writers")
			if !ok {
				continue
			}
			if out[name] == nil {
				out[name] = make(map[string]bool)
			}
			for _, fn := range strings.Fields(rest) {
				out[name][fn] = true
			}
		}
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				record(ts.Name.Name, ts.Doc)
				record(ts.Name.Name, gd.Doc)
			}
		}
	}
	return out
}
