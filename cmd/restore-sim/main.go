// Command restore-sim regenerates every table and figure of the ReStore
// paper's evaluation (Wang & Patel, DSN 2005) from the Go reproduction.
//
// Usage:
//
//	restore-sim [flags] <experiment>
//
// Experiments:
//
//	fig2          software-level fault injection (Section 3.1, Figure 2)
//	fig2-low32    low-32-bit injection variant (Section 3.1)
//	fig4          microarchitectural campaign, perfect detection (Figure 4)
//	fig4-latches  latch-only campaign (Section 5.1.2)
//	fig5          ReStore with JRS confidence (Figure 5)
//	fig5-perfect  oracle-confidence ablation (Section 5.2.1)
//	fig6          hardened (parity/ECC) pipeline + ReStore (Figure 6)
//	fig7          false-positive performance cost (Figure 7)
//	fig8          FIT scaling with design size (Figure 8)
//	summary       headline metrics: failure rates and MTBF gains
//	compare       ReStore vs full replication (DMR): coverage and cost
//	ablate-jrs    sweep the JRS confidence threshold (coverage vs cost)
//	ablate-ckpt   sweep the number of live checkpoints (reach vs cost)
//	vulnerability per-structure failure breakdown (AVF-style)
//	analyze       static bit-level ACE/AVF prediction per benchmark (no injection)
//	protect       derive budgeted protection policies from the static analysis
//	              and emit them as JSON with predicted coverage (no injection)
//	protect-compare
//	              measure the derived policies against the hand-picked
//	              parity/ECC placement at equal check-bit budget
//	budget-sweep  coverage vs check-bit budget for the static optimizer
//	demo          run the ReStore processor and print its activity report
//	all           everything above, in order
//
// Paper-scale campaigns take minutes; use -trials to scale them down,
// -workers to fan trials across CPUs (results are bit-identical to serial
// runs), and -progress for a live trial counter with an ETA.
//
// Durable campaigns: with -out <dir>, every injection campaign journals its
// completed trials under <dir> as it runs. Interrupting the process (ctrl-C
// or SIGTERM) drains in-flight trials, flushes the journal and exits;
// rerunning the identical command resumes where it left off and prints the
// same results a one-shot run would have. -shard k/n runs only every n-th
// trial (shard k of n, 1-based) so n machines can split a campaign; their
// -out directories are then combined with
//
//	restore-sim merge -out <merged-dir> <shard-dir-1> ... <shard-dir-n>
//
// and rerunning the experiment with -out <merged-dir> prints the full
// results without re-running any trial. See EXPERIMENTS.md for the on-disk
// format and the crash-consistency guarantees.
//
// -golden-image <dir> saves each campaign's warmed-up simulator state into
// <dir> on first run; reruns and shard workers restore the image instead of
// re-simulating the warm-up, with byte-identical results.
// -compress-journal writes fresh campaign journals with compressed segments.
// `restore-sim ckpt inspect <image>` prints a golden image's frame directory.
//
// Service mode: `restore-sim -root <dir> serve` runs the campaign service
// daemon — an HTTP job queue over the same durable-campaign machinery. Jobs
// are submitted, watched and cancelled with the submit/status/cancel/jobs
// client subcommands (or plain curl; see README.md). The queue is persistent:
// a killed daemon restarted on the same root resumes its jobs from their
// shard journals, and every merged result is byte-identical to a one-shot
// run of the same plan.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers profiling handlers on DefaultServeMux for -pprof
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/campaignio"
	"repro/internal/ckptio"
	"repro/internal/experiments"
	"repro/internal/fit"
	"repro/internal/harden"
	"repro/internal/inject"
	"repro/internal/obs"
	"repro/internal/perf"
	"repro/internal/restore"
	"repro/internal/staticvuln"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "restore-sim:", err)
		os.Exit(1)
	}
}

type cli struct {
	opts     experiments.Options
	csv      bool
	interval uint64
	perBench bool
	budget   uint64
	budgets  string

	// campaigns are deterministic for fixed options, so `all` shares one
	// campaign across the figures that reclassify the same trials.
	campaignCache map[campaignKey]*experiments.UArchExperiment
}

type campaignKey struct {
	latchesOnly bool
	scheme      harden.Scheme
}

func run(args []string) error {
	fs := flag.NewFlagSet("restore-sim", flag.ContinueOnError)
	var (
		seed      = fs.Int64("seed", 42, "campaign seed")
		scale     = fs.Float64("scale", 1.0, "workload data-structure scale")
		trials    = fs.Float64("trials", 0.25, "campaign size factor (1.0 = paper scale)")
		benches   = fs.String("bench", "", "comma-separated benchmark subset (default: all seven)")
		csv       = fs.Bool("csv", false, "emit CSV instead of aligned tables")
		interval  = fs.Uint64("interval", 100, "checkpoint interval for summary metrics")
		perBench  = fs.Bool("perbench", false, "append per-benchmark breakdowns")
		workers   = fs.Int("workers", 0, "goroutines per campaign (0 = serial, -1 = all CPUs); results are identical either way")
		progress  = fs.Bool("progress", false, "print a live trial counter with ETA to stderr")
		metrics   = fs.String("metrics", "", "write campaign/pipeline telemetry to this file after the run (.json, .csv, else Prometheus text); results are identical either way")
		pprof     = fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) for live profiling")
		out       = fs.String("out", "", "campaign directory: journal completed trials under this directory and resume from it on rerun; results are identical either way")
		shard     = fs.String("shard", "", "run shard k/n of every campaign (1-based, e.g. 1/4); requires -out, combine shard directories with the merge subcommand")
		stopAfter = fs.Int("stop-after", 0, "interrupt the run after this many trial completions (deterministic stand-in for ctrl-C; mainly for tests and CI)")
		golden    = fs.String("golden-image", "", "golden-image directory: the first run of each campaign saves its warmed-up state under this directory, reruns and shards restore it instead of re-simulating the warm-up; results are identical either way")
		compress  = fs.Bool("compress-journal", false, "write fresh campaign journals with compressed segments (needs -out; an existing journal keeps the framing it was created with)")
		budget    = fs.Uint64("budget", 0, "check-bit budget for the protect subcommand (0 = the hand-picked placement's overhead)")
		budgets   = fs.String("budgets", "", "comma-separated check-bit budgets for budget-sweep (default 0,416,832,1664,3328,6656)")
		sroot     = fs.String("root", "", "campaign service root directory (the serve daemon and its submit/status/cancel/jobs clients)")
		addr      = fs.String("addr", "", "serve: listen address (default 127.0.0.1:0); clients: daemon address (default: discover via <root>/serve.addr)")
		maxShards = fs.Int("max-shards", 2, "serve: shard simulations run concurrently across all jobs")
		shards    = fs.Int("shards", 1, "submit: split every campaign into this many shard journals, merged when the job completes")
		wait      = fs.Bool("wait", false, "submit/status: follow the job until it finishes")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: restore-sim [flags] <experiment>\n")
		fmt.Fprintf(fs.Output(), "       restore-sim merge -out <merged-dir> <shard-dir>...\n")
		fmt.Fprintf(fs.Output(), "       restore-sim ckpt inspect <image>\n")
		fmt.Fprintf(fs.Output(), "       restore-sim -root <dir> serve\n")
		fmt.Fprintf(fs.Output(), "       restore-sim -root <dir> [flags] submit <experiment>\n")
		fmt.Fprintf(fs.Output(), "       restore-sim -root <dir> {status|cancel} <job-id> | jobs\n\n")
		fmt.Fprintf(fs.Output(), "experiments: fig2 fig2-low32 fig4 fig4-latches fig5 fig5-perfect fig6 fig7 fig8 summary compare ablate-jrs ablate-ckpt vulnerability analyze protect protect-compare budget-sweep demo all\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.Arg(0) == "ckpt" {
		if fs.NArg() != 3 || fs.Arg(1) != "inspect" {
			return fmt.Errorf("usage: restore-sim ckpt inspect <image>")
		}
		return inspectImage(fs.Arg(2))
	}
	if fs.Arg(0) == "merge" {
		if *out == "" {
			return fmt.Errorf("merge requires -out <merged-dir>")
		}
		if fs.NArg() < 2 {
			return fmt.Errorf("usage: restore-sim merge -out <merged-dir> <shard-dir>...")
		}
		return mergeRoots(*out, fs.Args()[1:])
	}
	switch fs.Arg(0) {
	case "serve":
		if fs.NArg() != 1 {
			return fmt.Errorf("usage: restore-sim -root <dir> [-addr host:port] [-max-shards n] serve")
		}
		return runServe(*sroot, *addr, *maxShards, *workers)
	case "submit":
		if fs.NArg() != 2 {
			return fmt.Errorf("usage: restore-sim -root <dir> [flags] submit <experiment>")
		}
		return runSubmit(*sroot, *addr, fs.Arg(1), *benches, *seed, *scale, *trials,
			*shards, *workers, *compress, *wait)
	case "status":
		if fs.NArg() != 2 {
			return fmt.Errorf("usage: restore-sim -root <dir> [-wait] status <job-id>")
		}
		return runStatus(*sroot, *addr, fs.Arg(1), *wait)
	case "cancel":
		if fs.NArg() != 2 {
			return fmt.Errorf("usage: restore-sim -root <dir> cancel <job-id>")
		}
		return runCancel(*sroot, *addr, fs.Arg(1))
	case "jobs":
		if fs.NArg() != 1 {
			return fmt.Errorf("usage: restore-sim -root <dir> jobs")
		}
		return runJobs(*sroot, *addr)
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("exactly one experiment required")
	}
	shardIndex, shardCount := 0, 0
	if *shard != "" {
		var k, n int
		if _, err := fmt.Sscanf(*shard, "%d/%d", &k, &n); err != nil ||
			fmt.Sprintf("%d/%d", k, n) != *shard || k < 1 || k > n {
			return fmt.Errorf("invalid -shard %q (want k/n with 1 <= k <= n)", *shard)
		}
		if *out == "" {
			return fmt.Errorf("-shard requires -out: shards journal their trials into the campaign directory")
		}
		shardIndex, shardCount = k-1, n
	}

	if *workers < 0 {
		*workers = runtime.NumCPU()
	}
	c := &cli{
		opts: experiments.Options{
			Seed:            *seed,
			Scale:           *scale,
			TrialFactor:     *trials,
			Workers:         *workers,
			CampaignRoot:    *out,
			ShardIndex:      shardIndex,
			ShardCount:      shardCount,
			GoldenImageRoot: *golden,
			CompressJournal: *compress,
		},
		csv:      *csv,
		interval: *interval,
		perBench: *perBench,
		budget:   *budget,
		budgets:  *budgets,
	}
	if *progress {
		c.opts.Progress = (&progressMeter{}).tick
	}

	// One stop channel serves both interruption sources: a signal (when the
	// run is durable there is something worth flushing) and the
	// deterministic -stop-after trial counter. Campaigns drain in-flight
	// trials, flush their journal and return inject.ErrInterrupted.
	stop := make(chan struct{})
	var stopOnce sync.Once
	stopCampaigns := func() { stopOnce.Do(func() { close(stop) }) }
	if *out != "" || *stopAfter > 0 {
		c.opts.Interrupt = stop
	}
	if *out != "" {
		sigc := make(chan os.Signal, 2)
		signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
		defer signal.Stop(sigc)
		go watchInterrupts(sigc, stopCampaigns, forceExit)
	}
	if *stopAfter > 0 {
		inner := c.opts.Progress
		var ticks int64
		limit := int64(*stopAfter)
		c.opts.Progress = func(done, total int) {
			if atomic.AddInt64(&ticks, 1) >= limit {
				stopCampaigns()
			}
			if inner != nil {
				inner(done, total)
			}
		}
	}
	if *benches != "" {
		for _, name := range strings.Split(*benches, ",") {
			c.opts.Benchmarks = append(c.opts.Benchmarks, workload.Benchmark(strings.TrimSpace(name)))
		}
	}
	if *pprof != "" {
		go func() {
			// DefaultServeMux carries the net/http/pprof handlers.
			if err := http.ListenAndServe(*pprof, nil); err != nil {
				fmt.Fprintln(os.Stderr, "restore-sim: pprof:", err)
			}
		}()
	}
	var reg *obs.Registry
	if *metrics != "" {
		reg = obs.NewRegistry()
		c.opts.Obs = reg
	}

	var err error
	if shardCount > 0 {
		err = c.runShard(fs.Arg(0))
		if err == nil {
			fmt.Printf("shard %s of %q complete; journals under %s\n", *shard, fs.Arg(0), *out)
			fmt.Printf("combine with: restore-sim merge -out <merged-dir> <all %d shard dirs>\n", shardCount)
		}
	} else {
		err = c.dispatch(fs, fs.Arg(0))
	}
	if errors.Is(err, inject.ErrInterrupted) {
		if *out != "" {
			fmt.Fprintf(os.Stderr, "restore-sim: interrupted; completed trials are journalled under %s — rerun the same command to resume\n", *out)
		} else {
			fmt.Fprintln(os.Stderr, "restore-sim: interrupted (no -out directory, completed trials were discarded)")
		}
		return nil
	}
	if err != nil {
		return err
	}
	if reg != nil {
		if err := reg.Snapshot().WriteFile(*metrics); err != nil {
			return fmt.Errorf("writing metrics: %w", err)
		}
	}
	return nil
}

// watchInterrupts implements the two-level interruption protocol shared by
// durable runs and the service daemon. The first signal asks the campaigns
// to drain: in-flight trials finish, journals flush, the process exits
// through the normal ErrInterrupted path. A second signal means the user
// will not wait for the drain: the completed-trial records already buffered
// are flushed to the journals and the process exits immediately. A closed
// channel (signal.Stop on the way out) ends the watcher either way.
func watchInterrupts(sigc <-chan os.Signal, drain, force func()) {
	if _, ok := <-sigc; !ok {
		return
	}
	fmt.Fprintln(os.Stderr, "\nrestore-sim: draining in-flight trials and flushing journals (signal again to force exit)...")
	drain()
	if _, ok := <-sigc; !ok {
		return
	}
	force()
}

// exitFn is swapped out by tests that exercise the forced-exit path.
var exitFn = os.Exit

// forceExit flushes every open campaign journal's completed records and
// terminates with the conventional fatal-signal status. Journals stay
// crash-consistent: the flushed records are exactly what a resumed run
// recovers, and anything in flight re-runs then.
func forceExit() {
	fmt.Fprintln(os.Stderr, "restore-sim: forced exit; journalled trials are flushed, in-flight trials will re-run on resume")
	if err := inject.FlushJournals(); err != nil {
		fmt.Fprintln(os.Stderr, "restore-sim: journal flush:", err)
	}
	exitFn(130)
}

// runShard runs one shard of a campaign experiment. Only the raw campaigns
// can shard: derived experiments (fig8, summary, ...) need the full trial set
// and are produced from the merged directory instead. Partial per-shard
// tables would be misleading, so a shard run prints a completion notice
// rather than results.
func (c *cli) runShard(experiment string) error {
	return experiments.RunShardable(experiment, c.opts)
}

// mergeRoots combines the campaign directories journalled by sharded runs.
// Each root is the -out directory of one shard. Every campaign found in one
// root must exist in all of them, each campaign's shards must together cover
// every trial slot, and any journal corruption aborts the merge — a damaged
// shard is resumed, never patched over.
func mergeRoots(outRoot string, roots []string) error {
	ids, err := campaignio.ListCampaigns(roots[0])
	if err != nil {
		return err
	}
	if len(ids) == 0 {
		return fmt.Errorf("%w: no campaign directories under %s", campaignio.ErrNoCampaign, roots[0])
	}
	known := make(map[string]bool, len(ids))
	for _, id := range ids {
		known[id] = true
	}
	for _, root := range roots[1:] {
		other, err := campaignio.ListCampaigns(root)
		if err != nil {
			return err
		}
		for _, id := range other {
			if !known[id] {
				return fmt.Errorf("campaign %s exists under %s but not under %s", id, root, roots[0])
			}
		}
	}
	for _, id := range ids {
		dirs := make([]string, len(roots))
		for i, root := range roots {
			dirs[i] = filepath.Join(root, id)
		}
		man, payloads, err := campaignio.MergeScan(dirs)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if err := campaignio.WriteMerged(filepath.Join(outRoot, id), man, payloads); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Printf("merged %s: %d/%d slots from %d shards\n", id, len(payloads), man.Slots, len(roots))
	}
	fmt.Printf("rerun any merged experiment with -out %s to print its full results\n", outRoot)
	return nil
}

// inspectImage prints the frame directory of a ckptio container (golden
// images or any other RSTCKPT1 file): per-frame style, buffer count and
// plain/stored sizes, plus the identification string when frame 0 carries
// one. Only frame 0 is ever decoded, so inspection of a multi-gigabyte image
// stays cheap.
func inspectImage(path string) error {
	f, err := ckptio.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Printf("%s: %d frames\n\n", path, f.Frames())
	fmt.Printf("%5s  %-5s %8s %12s %12s %7s\n", "frame", "style", "buffers", "plain", "stored", "ratio")
	var plain, stored int64
	for i := 0; i < f.Frames(); i++ {
		style := "raw"
		if f.FrameStyle(i) == ckptio.StyleFlate {
			style = "flate"
		}
		p, s := f.FramePlainLen(i), f.FrameStoredLen(i)
		plain += int64(p)
		stored += int64(s)
		ratio := 1.0
		if p > 0 {
			ratio = float64(s) / float64(p)
		}
		fmt.Printf("%5d  %-5s %8d %12d %12d %7.2f\n", i, style, f.FrameBuffers(i), p, s, ratio)
	}
	ratio := 1.0
	if plain > 0 {
		ratio = float64(stored) / float64(plain)
	}
	fmt.Printf("\ntotal: %d plain bytes, %d stored (ratio %.2f)\n", plain, stored, ratio)
	if f.Frames() > 0 && f.FrameBuffers(0) == 1 {
		if bufs, err := f.ReadFrame(0); err == nil && printableMeta(bufs[0]) {
			fmt.Printf("meta: %s\n", bufs[0])
		}
	}
	return nil
}

// printableMeta reports whether a frame-0 buffer looks like an
// identification string worth printing verbatim.
func printableMeta(b []byte) bool {
	if len(b) == 0 || len(b) > 1024 {
		return false
	}
	for _, c := range b {
		if c < 0x20 || c > 0x7e {
			return false
		}
	}
	return true
}

func (c *cli) dispatch(fs *flag.FlagSet, experiment string) error {
	switch experiment {
	case "fig2":
		return c.fig2(false)
	case "fig2-low32":
		return c.fig2(true)
	case "fig4":
		return c.fig4(false)
	case "fig4-latches":
		return c.fig4(true)
	case "fig5":
		return c.fig5(inject.DetectorJRS, "Figure 5: ReStore coverage with JRS confidence vs checkpoint interval")
	case "fig5-perfect":
		return c.fig5(inject.DetectorOracleConfidence, "Section 5.2.1 ablation: perfect confidence predictor")
	case "fig6":
		return c.fig6()
	case "fig7":
		return c.fig7()
	case "fig8":
		return c.fig8()
	case "summary":
		return c.summary()
	case "compare":
		return c.compare()
	case "ablate-jrs":
		return c.ablateJRS()
	case "ablate-ckpt":
		return c.ablateCheckpoints()
	case "vulnerability":
		return c.vulnerability()
	case "analyze":
		return c.analyze()
	case "protect":
		return c.protectPolicies()
	case "protect-compare":
		return c.protectCompare()
	case "budget-sweep":
		return c.budgetSweep()
	case "demo":
		return c.demo()
	case "all":
		return c.all()
	default:
		fs.Usage()
		return fmt.Errorf("unknown experiment %q", experiment)
	}
}

// progressMeter renders a throttled single-line trial counter with an ETA on
// stderr. Campaigns report per-trial completions — from worker goroutines
// when -workers is set — so ticks are serialised under a mutex. Each campaign
// counts its own trials; the meter restarts its clock when a new campaign's
// first tick arrives.
type progressMeter struct {
	mu    sync.Mutex
	start time.Time
	last  time.Time
	prev  int
}

func (p *progressMeter) tick(done, total int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := time.Now()
	if p.start.IsZero() || done < p.prev {
		p.start = now
		p.last = time.Time{}
	}
	p.prev = done
	if done < total && now.Sub(p.last) < 200*time.Millisecond {
		return
	}
	p.last = now
	line := fmt.Sprintf("\r%d/%d trials (%.0f%%)", done, total, 100*float64(done)/float64(total))
	if elapsed := now.Sub(p.start); done > 0 && done < total && elapsed > time.Second {
		eta := time.Duration(float64(elapsed) * float64(total-done) / float64(done))
		line += fmt.Sprintf("  eta %s", eta.Round(time.Second))
	}
	fmt.Fprintf(os.Stderr, "%-48s", line)
	if done >= total {
		fmt.Fprintln(os.Stderr)
		p.start = time.Time{}
		p.prev = 0
	}
}

// benchList returns the benchmarks this run covers, in suite order.
func (c *cli) benchList() []workload.Benchmark {
	if len(c.opts.Benchmarks) > 0 {
		return c.opts.Benchmarks
	}
	return workload.Benchmarks()
}

func (c *cli) emit(t *stats.StackedTable) {
	if c.csv {
		fmt.Print(t.RenderCSV())
		return
	}
	fmt.Print(t.Render())
}

func (c *cli) fig2(low32 bool) error {
	res, err := experiments.Fig2(c.opts, low32)
	if err != nil {
		return err
	}
	c.emit(res.Table)
	n := len(res.AllTrials)
	masked := res.Table.Cell("masked", "25")
	fmt.Printf("\ntrials: %d  masked: %.1f%%  (95%% CI margin ≤ %.2f%%; paper: ~59%% masked)\n",
		n, 100*masked, 100*stats.WorstCaseMargin95(n))
	if c.perBench {
		fmt.Printf("\n%-10s %8s %10s %8s\n", "benchmark", "masked", "exc@100", "cfv@100")
		for _, bench := range c.benchList() {
			r, ok := res.PerBench[bench]
			if !ok {
				continue
			}
			d := r.Distribution(100)
			fmt.Printf("%-10s %7.1f%% %9.1f%% %7.1f%%\n", bench,
				100*r.MaskedFraction(), 100*d["exception"], 100*d["cfv"])
		}
	}
	return nil
}

func (c *cli) campaign(latchesOnly bool, scheme harden.Scheme) (*experiments.UArchExperiment, error) {
	key := campaignKey{latchesOnly: latchesOnly, scheme: scheme}
	if exp, ok := c.campaignCache[key]; ok {
		return exp, nil
	}
	exp, err := experiments.Campaign(c.opts, experiments.CampaignConfig{
		LatchesOnly: latchesOnly,
		Harden:      scheme,
	})
	if err != nil {
		return nil, err
	}
	if c.campaignCache == nil {
		c.campaignCache = make(map[campaignKey]*experiments.UArchExperiment)
	}
	c.campaignCache[key] = exp
	return exp, nil
}

func (c *cli) fig4(latchesOnly bool) error {
	exp, err := c.campaign(latchesOnly, harden.None)
	if err != nil {
		return err
	}
	title := "Figure 4: soft error propagation vs checkpoint interval (perfect cfv detection)"
	if latchesOnly {
		title = "Section 5.1.2: latch-only injection vs checkpoint interval (perfect cfv detection)"
	}
	c.emit(exp.Table(title, inject.DetectorPerfect))
	c.coverageFooter(exp, inject.DetectorPerfect)
	return nil
}

func (c *cli) fig5(det inject.Detector, title string) error {
	exp, err := c.campaign(false, harden.None)
	if err != nil {
		return err
	}
	c.emit(exp.Table(title, det))
	c.coverageFooter(exp, det)
	return nil
}

func (c *cli) fig6() error {
	exp, err := c.campaign(false, harden.LowHangingFruit)
	if err != nil {
		return err
	}
	c.emit(exp.Table("Figure 6: ReStore coverage in the hardened (parity/ECC) pipeline", inject.DetectorJRS))
	c.coverageFooter(exp, inject.DetectorJRS)
	for bench, r := range exp.PerBench {
		fmt.Printf("%s: protection covers %.1f%% of state bits, overhead %.1f%%\n",
			bench, 100*r.HardenStats.CoveredFraction(), 100*r.HardenStats.OverheadFraction())
		break // geometry is identical across benchmarks
	}
	return nil
}

func (c *cli) coverageFooter(exp *experiments.UArchExperiment, det inject.Detector) {
	n := len(exp.AllTrials)
	fmt.Printf("\ntrials: %d  (95%% CI margin ≤ %.2f%%)\n", n, 100*stats.WorstCaseMargin95(n))
	fmt.Printf("failure rate: baseline %.2f%%", 100*exp.RawFailureRate())
	for _, iv := range []uint64{25, 100, 500, 2000} {
		fmt.Printf("  @%d: %.2f%%", iv, 100*exp.FailureRateAt(iv, det))
	}
	fmt.Println()
	if c.perBench {
		fmt.Printf("\n%-10s %8s %10s %10s\n", "benchmark", "trials", "baseline", "@interval")
		for _, bench := range c.benchList() {
			r, ok := exp.PerBench[bench]
			if !ok {
				continue
			}
			fmt.Printf("%-10s %8d %9.2f%% %9.2f%%\n", bench, len(r.Trials),
				100*inject.RawFailureRate(r.Trials),
				100*inject.FailureRate(r.Trials, c.interval, det))
		}
	}
}

func (c *cli) fig7() error {
	res, err := experiments.Fig7(c.opts)
	if err != nil {
		return err
	}
	fmt.Print(res.Table)
	fmt.Printf("\nmodel inputs (suite mean): baseCPI=%.3f replayCPI=%.3f symptomRate=%.5f flush=%.1f\n",
		res.Mean.BaseCPI, res.Mean.ReplayCPI, res.Mean.SymptomRate, res.Mean.FlushPenalty)
	fmt.Println("(paper: ~6% slowdown at a 100-instruction interval; delayed wins beyond ~500)")
	return nil
}

func (c *cli) fig8() error {
	plain, err := c.campaign(false, harden.None)
	if err != nil {
		return err
	}
	hardened, err := c.campaign(false, harden.LowHangingFruit)
	if err != nil {
		return err
	}
	res := experiments.Fig8(plain, hardened, c.interval)
	fmt.Print(res.Table)
	fmt.Printf("\nMTBF improvement over baseline: ReStore %.1fx, lhf %.1fx, lhf+ReStore %.1fx (paper: 2x / - / 7x)\n",
		res.Improvements[fit.ReStore], res.Improvements[fit.LHF], res.Improvements[fit.LHFReStore])
	goal := res.GoalFIT
	fmt.Printf("largest design meeting the 1000-year goal (%.0f FIT): baseline %.0f bits, lhf+ReStore %.0f bits\n",
		goal, res.Model.MaxSizeMeetingGoal(fit.Baseline, goal),
		res.Model.MaxSizeMeetingGoal(fit.LHFReStore, goal))
	return nil
}

func (c *cli) summary() error {
	plain, err := c.campaign(false, harden.None)
	if err != nil {
		return err
	}
	hardened, err := c.campaign(false, harden.LowHangingFruit)
	if err != nil {
		return err
	}
	s := experiments.Summarize(plain, hardened, c.interval)
	fmt.Printf("ReStore headline metrics at a %d-instruction checkpoint interval\n", c.interval)
	fmt.Printf("  (trials: %d plain + %d hardened)\n\n", len(plain.AllTrials), len(hardened.AllTrials))
	fmt.Printf("  %-28s %8s %10s\n", "configuration", "failure", "paper")
	fmt.Printf("  %-28s %7.2f%% %10s\n", "baseline", 100*s.BaselineFailureRate, "~7%")
	fmt.Printf("  %-28s %7.2f%% %10s\n", "ReStore (JRS)", 100*s.ReStoreFailureRate, "~3.5%")
	fmt.Printf("  %-28s %7.2f%% %10s\n", "lhf (parity/ECC)", 100*s.LHFFailureRate, "~3%")
	fmt.Printf("  %-28s %7.2f%% %10s\n", "lhf+ReStore", 100*s.CombinedFailureRate, "~1%")
	fmt.Printf("\n  MTBF gain: ReStore %.1fx (paper ~2x), lhf+ReStore %.1fx (paper ~7x)\n",
		s.ReStoreMTBFGain, s.CombinedMTBFGain)
	return nil
}

// compare contrasts ReStore's on-demand redundancy with full replication
// (the paper's Section 1/6 framing: the IBM G5 duplicated its execution
// pipeline for maximal coverage; ReStore trades some coverage for near-zero
// cost).
func (c *cli) compare() error {
	exp, err := c.campaign(false, harden.None)
	if err != nil {
		return err
	}
	f7, err := experiments.Fig7(c.opts)
	if err != nil {
		return err
	}
	iv := c.interval
	base := exp.RawFailureRate()
	cov := func(det inject.Detector) float64 {
		if base == 0 {
			return 0
		}
		return 1 - exp.FailureRateAt(iv, det)/base
	}
	speedup := perf.Speedup(f7.Mean, iv, restore.PolicyImmediate)

	fmt.Printf("detection schemes at a %d-instruction checkpoint interval (%d trials)\n\n", iv, len(exp.AllTrials))
	fmt.Printf("  %-26s %10s %12s %12s\n", "scheme", "coverage", "perf cost", "extra core")
	fmt.Printf("  %-26s %9.1f%% %12s %12s\n", "none (baseline)", 0.0, "0%", "none")
	fmt.Printf("  %-26s %9.1f%% %11.1f%% %12s\n", "ReStore (JRS symptoms)",
		100*cov(inject.DetectorJRS), 100*(1-speedup), "none")
	fmt.Printf("  %-26s %9.1f%% %11.1f%% %12s\n", "ReStore (perfect cfv)",
		100*cov(inject.DetectorPerfect), 100*(1-speedup), "none")
	fmt.Printf("  %-26s %9.1f%% %12s %12s\n", "full replication (DMR)",
		100*cov(inject.DetectorDMR), "~0%*", "2x pipeline")
	fmt.Println("\n  (*) replicated cores run in parallel; the cost is silicon and power,")
	fmt.Println("      not cycles — exactly the trade the paper's Section 1 motivates.")
	fmt.Printf("\nresidual failure rates: baseline %.2f%%, ReStore %.2f%%, DMR %.2f%%\n",
		100*base, 100*exp.FailureRateAt(iv, inject.DetectorJRS),
		100*exp.FailureRateAt(iv, inject.DetectorDMR))
	return nil
}

func (c *cli) ablateJRS() error {
	opts := c.opts
	if len(opts.Benchmarks) == 0 {
		opts.Benchmarks = experiments.AblationBenchmarks()
	}
	res, err := experiments.AblateJRS(opts, nil, c.interval)
	if err != nil {
		return err
	}
	fmt.Print(res.Render())
	fmt.Println("(lower thresholds flag more mispredictions as high confidence:")
	fmt.Println(" more coverage, more false-positive rollbacks — Section 3.2.2's trade-off)")
	return nil
}

func (c *cli) ablateCheckpoints() error {
	exp, err := c.campaign(false, harden.None)
	if err != nil {
		return err
	}
	f7, err := experiments.Fig7(c.opts)
	if err != nil {
		return err
	}
	res := experiments.AblateCheckpoints(exp, f7.Mean, c.interval, nil)
	fmt.Print(res.Render())
	fmt.Println("(each extra live checkpoint extends the guaranteed rollback reach by one")
	fmt.Println(" interval but lengthens the mean re-execution after every rollback)")
	return nil
}

func (c *cli) vulnerability() error {
	exp, err := c.campaign(false, harden.None)
	if err != nil {
		return err
	}
	rep := inject.VulnerabilityReport(exp.AllTrials, c.interval, inject.DetectorPerfect)
	fmt.Print(inject.RenderVulnerability(rep, c.interval))
	fmt.Println("\n(the structures at the top are where the low-hanging-fruit parity/ECC")
	fmt.Println(" placement of Section 5.2.2 pays off; compare with `fig6`)")
	return nil
}

// analyze runs the static ACE/AVF analysis (no fault injection) over each
// benchmark and prints per-program reports plus a suite summary comparable to
// fig2's measured distribution.
func (c *cli) analyze() error {
	fmt.Println("static bit-level vulnerability analysis (ACE/AVF prediction, no injection)")
	fmt.Printf("seed %d, scale %g\n\n", c.opts.Seed, c.opts.Scale)
	type row struct {
		bench  workload.Benchmark
		masked float64
		fr     map[staticvuln.Symptom]float64
	}
	var rows []row
	for _, bench := range c.benchList() {
		prog, err := workload.Generate(bench, workload.Config{Seed: c.opts.Seed, Scale: c.opts.Scale})
		if err != nil {
			return err
		}
		rep, err := staticvuln.Analyze(prog, staticvuln.Options{})
		if err != nil {
			return fmt.Errorf("analyze %s: %w", bench, err)
		}
		fmt.Print(rep.Render(false))
		fmt.Println()
		rows = append(rows, row{bench, rep.MaskedFraction(false), rep.SymptomFractions(false)})
	}
	fmt.Printf("%-10s %8s %10s %8s %8s %10s\n",
		"benchmark", "masked", "exception", "cfv", "mem", "register")
	for _, r := range rows {
		fmt.Printf("%-10s %7.1f%% %9.1f%% %7.1f%% %7.1f%% %9.1f%%\n", r.bench,
			100*r.masked, 100*r.fr[staticvuln.SymException], 100*r.fr[staticvuln.SymCFV],
			100*r.fr[staticvuln.SymMem], 100*r.fr[staticvuln.SymRegister])
	}
	fmt.Println("\n(predictions follow the fig2 injection model: uniform flips of result")
	fmt.Println(" bits; compare the masked column against `fig2 -perbench`)")
	return nil
}

func (c *cli) demo() error {
	bench := workload.MCF
	if len(c.opts.Benchmarks) > 0 {
		bench = c.opts.Benchmarks[0]
	}
	rep, err := experiments.MeasureRestoreRun(bench, c.opts.Seed, 200_000, restore.Config{
		Interval: c.interval,
		Obs:      c.opts.Obs,
	})
	if err != nil {
		return err
	}
	fmt.Printf("ReStore processor on %s (%d instructions, interval %d):\n", bench, rep.Retired, c.interval)
	fmt.Printf("  cycles            %d (IPC %.2f)\n", rep.Cycles, float64(rep.Retired)/float64(rep.Cycles))
	fmt.Printf("  checkpoints       %d\n", rep.Checkpoints)
	fmt.Printf("  rollbacks         %d\n", rep.Rollbacks)
	fmt.Printf("  branch symptoms   %d (false positives %d, muted %d)\n",
		rep.BranchSymptoms, rep.FalsePositives, rep.MutedSymptoms)
	fmt.Printf("  exception/deadlock symptoms %d/%d\n", rep.ExceptionSymptoms, rep.DeadlockSymptoms)
	fmt.Printf("  detected errors   %d, vanished symptoms %d\n", rep.DetectedErrors, rep.VanishedSymptoms)
	return nil
}

func (c *cli) all() error {
	steps := []func() error{
		func() error { return c.fig2(false) },
		func() error { return c.fig2(true) },
		func() error { return c.fig4(false) },
		func() error { return c.fig4(true) },
		func() error {
			return c.fig5(inject.DetectorJRS, "Figure 5: ReStore coverage with JRS confidence vs checkpoint interval")
		},
		func() error {
			return c.fig5(inject.DetectorOracleConfidence, "Section 5.2.1 ablation: perfect confidence predictor")
		},
		c.fig6,
		c.fig7,
		c.fig8,
		c.summary,
		c.compare,
		c.analyze,
		c.protectPolicies,
		c.protectCompare,
		c.budgetSweep,
	}
	for i, step := range steps {
		if i > 0 {
			fmt.Println("\n" + strings.Repeat("=", 78) + "\n")
		}
		if err := step(); err != nil {
			return err
		}
	}
	return nil
}
