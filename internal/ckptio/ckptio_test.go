package ckptio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// buildImage assembles a representative mixed image: an empty frame, a raw
// frame with a zero-length buffer, a compressible flate frame, and a
// high-entropy flate frame (compression that does not pay still round-trips).
func buildImage(t *testing.T) *Writer {
	t.Helper()
	w := NewWriter()
	w.Frame(StyleRaw) // zero-buffer frame
	f1 := w.Frame(StyleRaw)
	f1.Add([]byte("control words"))
	f1.Add(nil) // zero-length buffer
	f1.Add([]byte{0xff})
	f2 := w.Frame(StyleFlate)
	f2.Add(bytes.Repeat([]byte{0xAB, 0, 0, 0}, 4096))
	f2.Add(make([]byte, 8192))
	f3 := w.Frame(StyleFlate)
	rng := rand.New(rand.NewSource(7))
	noise := make([]byte, 3000)
	for i := range noise {
		noise[i] = byte(rng.Intn(256))
	}
	f3.Add(noise)
	return w
}

// wantBuffers is what decoding buildImage's output must always yield.
func wantBuffers(t *testing.T, w *Writer) [][][]byte {
	t.Helper()
	out := make([][][]byte, len(w.frames))
	for i, f := range w.frames {
		bufs := make([][]byte, len(f.bufs))
		for j, b := range f.bufs {
			bufs[j] = append([]byte{}, b...)
		}
		out[i] = bufs
	}
	return out
}

// sameBuffers compares decoded buffers against the originals, treating nil
// and empty as equal (a zero-length buffer has no bytes to preserve).
func sameBuffers(a, b [][][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if !bytes.Equal(a[i][j], b[i][j]) {
				return false
			}
		}
	}
	return true
}

// TestEncodeIdenticalAcrossWorkersAndModes is the write half of the
// bit-identity contract: the same frames encode to the same bytes for every
// worker count, and WriteFile produces exactly Encode's bytes.
func TestEncodeIdenticalAcrossWorkersAndModes(t *testing.T) {
	base, err := buildImage(t).Encode(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, 64} {
		enc, err := buildImage(t).Encode(workers)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(base, enc) {
			t.Fatalf("Encode(%d) differs from Encode(1)", workers)
		}
	}
	for _, workers := range []int{1, 8} {
		path := filepath.Join(t.TempDir(), "img.ckpt")
		if err := buildImage(t).WriteFile(path, workers); err != nil {
			t.Fatal(err)
		}
		disk, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(base, disk) {
			t.Fatalf("WriteFile(workers=%d) bytes differ from Encode(1)", workers)
		}
	}
}

// TestDecodeIdenticalAcrossWorkersAndModes is the read half: streaming
// (Open) and memory (Decode) modes at several worker counts all restore the
// exact buffers that were written.
func TestDecodeIdenticalAcrossWorkersAndModes(t *testing.T) {
	w := buildImage(t)
	want := wantBuffers(t, w)
	data, err := w.Encode(4)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "img.ckpt")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		mem, err := Decode(data)
		if err != nil {
			t.Fatal(err)
		}
		got, err := mem.ReadAll(workers)
		if err != nil {
			t.Fatalf("memory ReadAll(%d): %v", workers, err)
		}
		if !sameBuffers(want, got) {
			t.Fatalf("memory-mode decode (workers=%d) differs from written buffers", workers)
		}
		fil, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		got, err = fil.ReadAll(workers)
		fil.Close()
		if err != nil {
			t.Fatalf("file ReadAll(%d): %v", workers, err)
		}
		if !sameBuffers(want, got) {
			t.Fatalf("file-mode decode (workers=%d) differs from written buffers", workers)
		}
	}
}

func TestStatsReportCompression(t *testing.T) {
	w := buildImage(t)
	if _, err := w.Encode(2); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.Frames != 4 {
		t.Fatalf("Frames = %d, want 4", st.Frames)
	}
	if st.Buffers != 6 {
		t.Fatalf("Buffers = %d, want 6", st.Buffers)
	}
	if st.PlainBytes <= 0 || st.StoredBytes <= 0 {
		t.Fatalf("byte totals not populated: %+v", st)
	}
	// The image is dominated by the highly compressible frame, so overall
	// stored < plain.
	if st.StoredBytes >= st.PlainBytes {
		t.Fatalf("expected net compression, got stored=%d plain=%d", st.StoredBytes, st.PlainBytes)
	}
	if r := st.Ratio(); r <= 0 || r >= 1 {
		t.Fatalf("Ratio() = %v, want in (0,1)", r)
	}
}

func TestEmptyImageRoundTrips(t *testing.T) {
	data, err := NewWriter().Encode(3)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if c.Frames() != 0 {
		t.Fatalf("Frames() = %d, want 0", c.Frames())
	}
	if _, err := c.ReadAll(4); err != nil {
		t.Fatal(err)
	}
}

// decodeAllBytes fully decodes data in both IO modes, returning the first
// error. Fault-injection tests use it so a flipped byte is guaranteed to be
// seen regardless of mode.
func decodeAllBytes(t *testing.T, data []byte) error {
	t.Helper()
	mem, err := Decode(data)
	if err == nil {
		_, err = mem.ReadAll(1)
	}
	path := filepath.Join(t.TempDir(), "flip.ckpt")
	if werr := os.WriteFile(path, data, 0o644); werr != nil {
		t.Fatal(werr)
	}
	fil, ferr := Open(path)
	if ferr == nil {
		_, ferr = fil.ReadAll(2)
		fil.Close()
	}
	if (err == nil) != (ferr == nil) {
		t.Fatalf("IO modes disagree on corruption: memory=%v file=%v", err, ferr)
	}
	if err != nil {
		return err
	}
	return ferr
}

// TestFaultInjection flips single bytes in every structural region of the
// file — magic, frame-directory entry, header CRC, compressed frame body,
// raw buffer body, buffer CRC — and asserts each yields a typed error,
// never a silently wrong restore. (Satellite: ckptio fault-injection
// coverage, mirroring the journal torn-tail tests.)
func TestFaultInjection(t *testing.T) {
	w := buildImage(t)
	data, err := w.Encode(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := decodeAllBytes(t, append([]byte{}, data...)); err != nil {
		t.Fatalf("pristine image must decode: %v", err)
	}
	hlen := int(binary.LittleEndian.Uint32(data[8:12]))
	frameStart := headerFixed + hlen + 4
	// Offsets of interesting regions. Frame 1 (raw) starts after frame 0
	// (zero stored bytes); its first buffer body begins 4 bytes in and its
	// CRC follows the 13-byte "control words" payload.
	rawBody := frameStart + 4 + 2                                          // inside "control words"
	rawCRC := frameStart + 4 + 13                                          // first buffer's CRC word
	flateBody := frameStart + (4 + 13 + 4) + (4 + 0 + 4) + (4 + 1 + 4) + 3 // inside frame 2's flate stream
	cases := []struct {
		name string
		off  int
		want error
	}{
		{"magic", 3, ErrBadMagic},
		{"frame directory entry", 12 + 4 + frameDirSize + 2, ErrCorrupt}, // frame 1's storedLen
		{"header CRC field", headerFixed + hlen + 1, ErrCorrupt},
		{"raw buffer body", rawBody, ErrCorrupt},
		{"buffer CRC field", rawCRC, ErrCorrupt},
		{"compressed frame body", flateBody, ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mut := append([]byte{}, data...)
			mut[tc.off] ^= 0x40
			err := decodeAllBytes(t, mut)
			if err == nil {
				t.Fatalf("flipping byte %d (%s) decoded cleanly", tc.off, tc.name)
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("flipping byte %d (%s): got %v, want %v", tc.off, tc.name, err, tc.want)
			}
		})
	}
}

// TestTruncationDetected cuts the file at several points; every cut is a
// typed error.
func TestTruncationDetected(t *testing.T) {
	data, err := buildImage(t).Encode(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 4, headerFixed, headerFixed + 5, len(data) - 1} {
		err := decodeAllBytes(t, append([]byte{}, data[:n]...))
		if err == nil {
			t.Fatalf("truncation to %d bytes decoded cleanly", n)
		}
		if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d bytes: untyped error %v", n, err)
		}
	}
	// Trailing garbage is corruption, not silently ignored bytes.
	if err := decodeAllBytes(t, append(append([]byte{}, data...), 0xEE)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing byte: got %v, want ErrCorrupt", err)
	}
}

// TestUnknownStyleRejected ensures a future style byte fails loudly today.
func TestUnknownStyleRejected(t *testing.T) {
	w := NewWriter()
	w.Frame(Style(9)).Add([]byte("x"))
	if _, err := w.Encode(1); err == nil {
		t.Fatal("encoding an unknown style must fail")
	}
}

func TestReadFrameIndependence(t *testing.T) {
	w := buildImage(t)
	want := wantBuffers(t, w)
	data, err := w.Encode(1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	// Read frames out of order; each must stand alone.
	for _, i := range []int{3, 1, 0, 2, 1} {
		got, err := c.ReadFrame(i)
		if err != nil {
			t.Fatalf("ReadFrame(%d): %v", i, err)
		}
		if !sameBuffers([][][]byte{want[i]}, [][][]byte{got}) {
			t.Fatalf("ReadFrame(%d) mismatch", i)
		}
	}
	if _, err := c.ReadFrame(4); err == nil {
		t.Fatal("out-of-range frame index must error")
	}
}
