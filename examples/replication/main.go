// Replication: run the same fault scenario under ReStore (symptom-based,
// on-demand redundancy) and under full dual-modular replication, the
// comparison the paper's introduction frames with the IBM S/390 G5.
//
// Both machines face an identical corrupted live pointer. DMR detects the
// divergence at the very first mismatching commit; ReStore waits for the
// fault to become a symptom (here, a memory access fault a few instructions
// later). Both recover; the difference is hardware: DMR pays a second
// pipeline all the time, ReStore pays only a rollback when something looks
// wrong.
//
// Run with: go run ./examples/replication
package main

import (
	"fmt"
	"log"

	"repro/internal/asm"
	"repro/internal/dmr"
	"repro/internal/isa"
	"repro/internal/pipeline"
	"repro/internal/restore"
	"repro/internal/workload"
)

const program = `
	.data buf 4096
	.base r10 buf
loop:
	ldq  r2, 0(r10)      ; dereference the long-lived pointer
	addq r3, r2, r3
	stq  r3, 8(r10)
	xor  r3, r2, r4
	srl  r4, #3, r5
	br   loop
`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func newPipe(prog *workload.Program) (*pipeline.Pipeline, error) {
	m, err := prog.NewMemory()
	if err != nil {
		return nil, err
	}
	return pipeline.New(pipeline.DefaultConfig(), m, prog.Entry)
}

func run() error {
	prog, err := asm.Assemble("ptrloop", program)
	if err != nil {
		return err
	}

	// --- ReStore ---
	pipe1, err := newPipe(prog)
	if err != nil {
		return err
	}
	proc := restore.New(pipe1, restore.Config{Interval: 100})
	if _, err := proc.Run(10_000, 1_000_000); err != nil {
		return err
	}
	pipe1.CorruptArchReg(isa.Reg(10), 45) // wild pointer
	repR, err := proc.Run(50_000, 5_000_000)
	if err != nil {
		return err
	}

	// --- DMR ---
	pipe2, err := newPipe(prog)
	if err != nil {
		return err
	}
	core := dmr.New(pipe2, dmr.Config{Interval: 100})
	if _, err := core.Run(10_000, 1_000_000); err != nil {
		return err
	}
	core.Main().CorruptArchReg(isa.Reg(10), 45)
	repD, err := core.Run(50_000, 5_000_000)
	if err != nil {
		return err
	}

	fmt.Println("same fault — bit 45 of a live pointer — under two architectures:")
	fmt.Printf("\n%-26s %14s %14s\n", "", "ReStore", "DMR")
	fmt.Printf("%-26s %14d %14d\n", "instructions completed", repR.Retired, repD.Retired)
	fmt.Printf("%-26s %14d %14d\n", "cycles", repR.Cycles, repD.Cycles)
	fmt.Printf("%-26s %14d %14d\n", "detections",
		repR.ExceptionSymptoms+repR.BranchSymptoms+repR.DeadlockSymptoms, repD.DetectedErrors)
	fmt.Printf("%-26s %14d %14d\n", "rollbacks", repR.Rollbacks, repD.Rollbacks)
	fmt.Printf("%-26s %14s %14s\n", "extra hardware", "~none", "2x pipeline")
	fmt.Printf("%-26s %14s %14s\n", "detection mechanism", "symptom", "commit compare")

	fmt.Println("\nReStore waited for the corrupt pointer to FAULT (an exception symptom);")
	fmt.Println("DMR caught the first divergent commit. Both recovered via checkpoint")
	fmt.Println("rollback — ReStore just gets there without a second execution core,")
	fmt.Println("which is the entire thesis of the paper.")
	return nil
}
