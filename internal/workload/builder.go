// Package workload generates the deterministic synthetic benchmark programs
// that stand in for the paper's SPEC2000 integer workloads (bzip2, gap, gcc,
// gzip, mcf, parser and vortex).
//
// Real SPEC binaries cannot be shipped or executed here, so each benchmark
// is a composition of parameterised kernels (pointer chasing, hashing,
// branchy scans, call trees, jump-table dispatch, streaming arithmetic)
// whose weights and data footprints are chosen to reproduce the workload
// statistics the paper's results depend on: the fraction of instructions
// computing addresses and branch conditions, the sparsity of the virtual
// address space relative to the footprint, branch predictability above 95 %,
// and a realistic population of dead and transitively-dead values that
// yields software-level masking. Every program is generated from an explicit
// seed and loops forever, so fault-injection windows of any length are
// available.
package workload

import (
	"encoding/binary"
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
)

// Standard layout of the synthetic address space. The gap between regions —
// and the emptiness of the rest of the 64-bit space — mirrors the sparse
// mappings the paper identifies as the reason corrupted pointers usually
// fault (Section 3.1).
const (
	CodeBase  = 0x0000_0001_0000 // executable, read-only
	DataBase  = 0x0000_1000_0000 // read-write heap
	StackBase = 0x0000_7FFF_0000 // read-write, grows down from StackTop
	StackSize = 4 * mem.PageSize
	StackTop  = StackBase + StackSize - 64
)

// Register conventions used by all kernels. Kernels may clobber scratch
// registers freely; base registers are set once at program start and must be
// preserved.
const (
	// RegScratch0..7 are r1..r8.
	RegScratch0 = isa.Reg(1)
	// RegBase0..9 are r16..r25 and hold data-segment base addresses.
	RegBase0 = isa.Reg(16)
	// RegIter (r9) is the global outer-loop iteration counter.
	RegIter = isa.Reg(9)
)

// Segment is a region of initialised data in the program image.
type Segment struct {
	Name string
	Base uint64
	Data []byte
	Perm mem.Perm
}

// Program is a fully linked synthetic benchmark.
type Program struct {
	Name     string
	Entry    uint64
	CodeBase uint64
	Code     []uint32
	Segments []Segment
}

// NewMemory builds a fresh memory image containing the program: code pages
// (execute+read), data segments, and the stack.
func (p *Program) NewMemory() (*mem.Memory, error) {
	m := mem.New()
	codeBytes := make([]byte, len(p.Code)*isa.InstBytes)
	for i, w := range p.Code {
		binary.LittleEndian.PutUint32(codeBytes[i*isa.InstBytes:], w)
	}
	m.Map(p.CodeBase, uint64(len(codeBytes)), mem.PermRX)
	if err := m.WriteBytes(p.CodeBase, codeBytes); err != nil {
		return nil, fmt.Errorf("load code: %w", err)
	}
	for _, seg := range p.Segments {
		m.Map(seg.Base, uint64(len(seg.Data)), seg.Perm)
		if err := m.WriteBytes(seg.Base, seg.Data); err != nil {
			return nil, fmt.Errorf("load segment %s: %w", seg.Name, err)
		}
	}
	m.Map(StackBase, StackSize, mem.PermRW)
	return m, nil
}

// NumInsts returns the static code size in instructions.
func (p *Program) NumInsts() int { return len(p.Code) }

// SegmentFor returns the index into Segments of the data segment containing
// addr, or -1 when addr falls outside every initialised segment. Segments are
// page-aligned with unmapped guard pages between them, so an address resolves
// to at most one segment.
func (p *Program) SegmentFor(addr uint64) int {
	for i := range p.Segments {
		seg := &p.Segments[i]
		if addr >= seg.Base && addr < seg.Base+uint64(len(seg.Data)) {
			return i
		}
	}
	return -1
}

type branchFixup struct {
	instIndex int
	label     string
}

type dataFixup struct {
	segIndex int
	offset   uint64
	label    string
}

// Builder assembles a Program: it accumulates instructions, resolves labels,
// lays out data segments, and patches code addresses into data (for jump
// tables).
type Builder struct {
	name     string
	codeBase uint64
	insts    []isa.Inst
	labels   map[string]int
	branches []branchFixup

	segments   []Segment
	nextData   uint64
	dataFixups []dataFixup

	err error
}

// NewBuilder returns an empty builder for a program named name.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:     name,
		codeBase: CodeBase,
		labels:   make(map[string]int),
		nextData: DataBase,
	}
}

func (b *Builder) setErr(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf(format, args...)
	}
}

// Label defines a code label at the current position.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.setErr("workload: duplicate label %q", name)
		return
	}
	b.labels[name] = len(b.insts)
}

// Emit appends a raw instruction.
func (b *Builder) Emit(inst isa.Inst) {
	b.insts = append(b.insts, inst)
}

// Op emits a three-register operate instruction.
func (b *Builder) Op(op isa.Op, ra, rb, rc isa.Reg) {
	b.Emit(isa.Inst{Op: op, Ra: ra, Rb: rb, Rc: rc})
}

// OpLit emits an operate instruction with an 8-bit literal second operand.
func (b *Builder) OpLit(op isa.Op, ra isa.Reg, lit uint8, rc isa.Reg) {
	b.Emit(isa.Inst{Op: op, Ra: ra, UseLit: true, Lit: lit, Rc: rc})
}

// Load emits a load (LDQ/LDL) of ra from disp(rb).
func (b *Builder) Load(op isa.Op, ra isa.Reg, disp int32, rb isa.Reg) {
	b.Emit(isa.Inst{Op: op, Ra: ra, Rb: rb, Disp: disp})
}

// Store emits a store (STQ/STL) of ra to disp(rb).
func (b *Builder) Store(op isa.Op, ra isa.Reg, disp int32, rb isa.Reg) {
	b.Emit(isa.Inst{Op: op, Ra: ra, Rb: rb, Disp: disp})
}

// Branch emits a conditional or unconditional PC-relative branch to label.
func (b *Builder) Branch(op isa.Op, ra isa.Reg, label string) {
	b.branches = append(b.branches, branchFixup{instIndex: len(b.insts), label: label})
	b.Emit(isa.Inst{Op: op, Ra: ra})
}

// Call emits a BSR to label, linking through RegRA.
func (b *Builder) Call(label string) {
	b.Branch(isa.OpBSR, isa.RegRA, label)
}

// Ret emits a return through RegRA.
func (b *Builder) Ret() {
	b.Emit(isa.Inst{Op: isa.OpRET, Rb: isa.RegRA, Rc: isa.RegZero})
}

// JmpReg emits an indirect jump through rb.
func (b *Builder) JmpReg(rb isa.Reg) {
	b.Emit(isa.Inst{Op: isa.OpJMP, Rb: rb, Rc: isa.RegZero})
}

// Nop emits a no-op.
func (b *Builder) Nop() { b.Emit(isa.Inst{Op: isa.OpNOP}) }

// LoadImm materialises a 64-bit constant into r using literal chunks and
// shifts. Small constants take one instruction.
func (b *Builder) LoadImm(r isa.Reg, v uint64) {
	if v < 256 {
		b.OpLit(isa.OpADDQ, isa.RegZero, uint8(v), r)
		return
	}
	// Find the highest non-zero byte and build downward.
	top := 7
	for top > 0 && byte(v>>(8*top)) == 0 {
		top--
	}
	b.OpLit(isa.OpADDQ, isa.RegZero, byte(v>>(8*top)), r)
	for i := top - 1; i >= 0; i-- {
		b.OpLit(isa.OpSLL, r, 8, r)
		if c := byte(v >> (8 * i)); c != 0 {
			b.OpLit(isa.OpBIS, r, c, r)
		}
	}
}

// AllocData reserves a page-aligned data segment of the given size and
// returns its base address. Contents are supplied by the caller.
func (b *Builder) AllocData(name string, data []byte, perm mem.Perm) uint64 {
	base := b.nextData
	b.segments = append(b.segments, Segment{Name: name, Base: base, Data: data, Perm: perm})
	size := (uint64(len(data)) + mem.PageSize - 1) &^ (mem.PageSize - 1)
	if size == 0 {
		size = mem.PageSize
	}
	// Leave an unmapped guard page between segments so small pointer
	// corruptions can fault too.
	b.nextData = base + size + mem.PageSize
	return base
}

// PatchCodeAddr records that the 8 bytes at offset within the segment
// (identified by its base address) must hold the final address of the given
// code label. Used to build jump tables.
func (b *Builder) PatchCodeAddr(segBase uint64, offset uint64, label string) {
	for i := range b.segments {
		if b.segments[i].Base == segBase {
			b.dataFixups = append(b.dataFixups, dataFixup{segIndex: i, offset: offset, label: label})
			return
		}
	}
	b.setErr("workload: PatchCodeAddr: no segment at %#x", segBase)
}

// labelAddr returns the final address of a label.
func (b *Builder) labelAddr(label string) (uint64, bool) {
	idx, ok := b.labels[label]
	if !ok {
		return 0, false
	}
	return b.codeBase + uint64(idx)*isa.InstBytes, true
}

// Build resolves all fixups and returns the linked program.
func (b *Builder) Build() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	for _, fix := range b.branches {
		target, ok := b.labelAddr(fix.label)
		if !ok {
			return nil, fmt.Errorf("workload: undefined label %q", fix.label)
		}
		pc := b.codeBase + uint64(fix.instIndex)*isa.InstBytes
		disp, ok := isa.BranchDisp(pc, target)
		if !ok {
			return nil, fmt.Errorf("workload: branch to %q out of range", fix.label)
		}
		b.insts[fix.instIndex].Disp = disp
	}
	for _, fix := range b.dataFixups {
		addr, ok := b.labelAddr(fix.label)
		if !ok {
			return nil, fmt.Errorf("workload: undefined label %q in data fixup", fix.label)
		}
		seg := &b.segments[fix.segIndex]
		if fix.offset+8 > uint64(len(seg.Data)) {
			return nil, fmt.Errorf("workload: data fixup outside segment %s", seg.Name)
		}
		binary.LittleEndian.PutUint64(seg.Data[fix.offset:], addr)
	}
	code := make([]uint32, len(b.insts))
	for i, inst := range b.insts {
		code[i] = isa.Encode(inst)
	}
	return &Program{
		Name:     b.name,
		Entry:    b.codeBase,
		CodeBase: b.codeBase,
		Code:     code,
		Segments: b.segments,
	}, nil
}
