// Package fixture exercises the protectpolicy diagnostics.
package fixture

import (
	"repro/internal/harden"
	"repro/internal/protect"
)

// Missing ECC: adding a protection domain must not fall through silently.
func costOf(p harden.Protection) int {
	switch p { // want "switch over harden.Protection misses ECC"
	case harden.Unprotected:
		return 0
	case harden.Parity:
		return 1
	}
	return 0
}

// Missing KindStaticBudget.
func describe(k protect.Kind) string {
	switch k { // want "switch over protect.Kind misses KindStaticBudget"
	case protect.KindNone:
		return "baseline"
	case protect.KindHandPicked:
		return "manual"
	}
	return ""
}

// Campaign-style code reading a protection map directly instead of going
// through the sanctioned consult point.
func runTrial(m *harden.Map, elem int) bool {
	if m.Protected(elem) { // want "harden.Map.Protected read outside consultProtection"
		return false
	}
	return m.Protection(elem) == harden.Unprotected // want "harden.Map.Protection read outside consultProtection"
}
