// Package service turns the one-shot campaign runner into a resident daemon:
// an HTTP server (exposed as `restore-sim serve`) with a persistent job
// queue. Campaigns are submitted as jobs, sharded across a bounded worker
// pool, journalled durably (internal/campaignio), and merged on completion —
// so a daemon that is killed and restarted resumes its queue and finishes
// every job with results byte-identical to a one-shot `restore-sim` run of
// the same plan.
//
// The determinism contract does all the heavy lifting: every trial is a pure
// function of the campaign configuration and its slot, so the service adds
// no state of its own to the results. What it adds is orchestration, and the
// orchestration is durable by construction:
//
//   - A job is a directory under <root>/jobs/<id> holding job.json (the
//     spec and state, written atomically) plus one campaign directory per
//     shard. The job record is the unit of queue durability; the shard
//     journals are the unit of trial durability.
//   - The scheduler persists state=running BEFORE the first shard starts.
//     A daemon killed at any instant restarts, finds the running job, and
//     re-queues it; the shards resume from their journals.
//   - Graceful shutdown closes the same Interrupt channel the CLI uses:
//     in-flight trials drain, journals flush, and the job returns to the
//     queue on disk.
//   - Merge-on-completion writes <root>/jobs/<id>/merged/<campaign>, whose
//     manifest and journal are byte-for-byte the files a serial one-shot
//     run with -out would have produced.
package service

import (
	"fmt"
	"time"

	"repro/internal/experiments"
	"repro/internal/workload"
)

// JobState is the lifecycle of a submitted campaign job.
//
//	queued ──▶ running ──▶ done
//	   ▲          │  ├───▶ failed
//	   │          │  └───▶ cancelled
//	   └──────────┘  (graceful shutdown or daemon crash re-queues)
type JobState string

const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateCancelled JobState = "cancelled"
)

// Terminal reports whether a job in this state will never run again.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// JobSpec is a campaign submission: which experiment to run and how to scale
// and split it. The zero values of the optional fields mean "the CLI's
// defaults", so a spec of just {"experiment": "fig2"} is a paper-scale run.
type JobSpec struct {
	// Experiment names a shardable campaign experiment
	// (experiments.ShardableExperiments): fig2, fig2-low32, fig4,
	// fig4-latches, fig5, fig5-perfect, fig6.
	Experiment string `json:"experiment"`
	// Seed drives workload generation and injection sampling (0 = 42).
	Seed int64 `json:"seed,omitempty"`
	// Scale multiplies workload data-structure sizes (0 = 1.0).
	Scale float64 `json:"scale,omitempty"`
	// TrialFactor scales campaign sizes; 1.0 is paper scale (0 = 1.0).
	TrialFactor float64 `json:"trial_factor,omitempty"`
	// Benchmarks restricts the suite (empty = all seven).
	Benchmarks []string `json:"benchmarks,omitempty"`
	// Shards splits every campaign's trial slots across this many
	// journals, run concurrently up to the service's shard pool bound
	// (0 = 1). Results are byte-identical at any shard count.
	Shards int `json:"shards,omitempty"`
	// Workers is the per-shard engine goroutine count (0 = serial).
	// Inert: results are byte-identical at any worker count.
	Workers int `json:"workers,omitempty"`
	// CompressJournal selects compressed-segment framing for fresh shard
	// journals. Inert: the merged journal is always bare framing.
	CompressJournal bool `json:"compress_journal,omitempty"`
}

// maxShardsPerJob bounds a single job's shard fan-out; the global pool bound
// (Config.MaxShards) governs how many run at once.
const maxShardsPerJob = 64

// normalize fills defaulted fields in place.
func (s *JobSpec) normalize() {
	if s.Shards == 0 {
		s.Shards = 1
	}
	if s.Seed == 0 {
		s.Seed = 42
	}
	if s.Scale == 0 {
		s.Scale = 1.0
	}
	if s.TrialFactor == 0 {
		s.TrialFactor = 1.0
	}
}

// Validate rejects specs the runner could not execute, by name — submission
// is the right time to find a typo, not an hour into a queue.
func (s JobSpec) Validate() error {
	ok := false
	for _, name := range experiments.ShardableExperiments() {
		if s.Experiment == name {
			ok = true
			break
		}
	}
	if !ok {
		return fmt.Errorf("service: experiment %q cannot run as a job (shardable: %v)",
			s.Experiment, experiments.ShardableExperiments())
	}
	if s.Shards < 0 || s.Shards > maxShardsPerJob {
		return fmt.Errorf("service: %d shards (want 0..%d)", s.Shards, maxShardsPerJob)
	}
	if s.Workers < 0 {
		return fmt.Errorf("service: negative worker count %d", s.Workers)
	}
	if s.Seed < 0 || s.Scale < 0 || s.TrialFactor < 0 {
		return fmt.Errorf("service: negative seed/scale/trial_factor")
	}
	known := make(map[string]bool)
	for _, b := range workload.Benchmarks() {
		known[string(b)] = true
	}
	for _, b := range s.Benchmarks {
		if !known[b] {
			return fmt.Errorf("service: unknown benchmark %q (have %v)", b, workload.Benchmarks())
		}
	}
	return nil
}

// Job is the durable record of one submission plus its live progress.
type Job struct {
	ID    string   `json:"id"`
	Spec  JobSpec  `json:"spec"`
	State JobState `json:"state"`
	// Error holds the failure reason for StateFailed.
	Error string `json:"error,omitempty"`
	// Campaigns lists the merged campaign directory names (one per
	// benchmark) once the job is done; each lives under the job's merged/
	// directory and is a valid -out directory for result rendering.
	Campaigns []string `json:"campaigns,omitempty"`
	// TrialsDone counts trial completions observed this daemon lifetime
	// (journal-recovered slots included). Volatile: not persisted, resets
	// on restart. Zero total is unknowable cheaply, so only the count is
	// reported.
	TrialsDone int64 `json:"trials_done,omitempty"`

	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
}

// clone returns a copy safe to hand out of the service's lock.
func (j *Job) clone() *Job {
	c := *j
	c.Campaigns = append([]string(nil), j.Campaigns...)
	c.Spec.Benchmarks = append([]string(nil), j.Spec.Benchmarks...)
	if j.Started != nil {
		t := *j.Started
		c.Started = &t
	}
	if j.Finished != nil {
		t := *j.Finished
		c.Finished = &t
	}
	return &c
}
