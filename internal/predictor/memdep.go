package predictor

// MemDep is the memory-dependence predictor of Figure 3 ("Mem Dep Pred"),
// modelled on the Alpha 21264's wait table: loads issue speculatively past
// older stores with unresolved addresses unless their PC has previously
// caused a memory-order violation. A violation trains the table; entries
// decay over time so a load that stops conflicting regains its aggression.
type MemDep struct {
	table []uint8
	mask  uint64
}

// NewMemDep returns a wait table with 2^bits entries.
func NewMemDep(bits int) *MemDep {
	n := 1 << bits
	return &MemDep{table: make([]uint8, n), mask: uint64(n - 1)}
}

func (m *MemDep) index(pc uint64) uint64 { return (pc >> 2) & m.mask }

// ShouldWait reports whether the load at pc must wait for all older store
// addresses to resolve before issuing.
func (m *MemDep) ShouldWait(pc uint64) bool { return m.table[m.index(pc)] > 0 }

// TrainViolation records that the load at pc issued past a conflicting
// store and had to be replayed.
func (m *MemDep) TrainViolation(pc uint64) {
	m.table[m.index(pc)] = 3
}

// Decay ages every entry by one step; the pipeline calls this periodically
// (the 21264 clears its wait table on a coarse interval for the same
// reason).
func (m *MemDep) Decay() {
	for i := range m.table {
		if m.table[i] > 0 {
			m.table[i]--
		}
	}
}

// Clone returns an independent copy.
func (m *MemDep) Clone() *MemDep {
	c := *m
	c.table = append([]uint8(nil), m.table...)
	return &c
}
