package obs

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteCSV writes the snapshot as rows of name,kind,value,count; histogram
// buckets follow their metric as extra rows with the bound spliced into the
// name (name{le=N}).
func (s Snapshot) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"name", "kind", "value", "count"}); err != nil {
		return err
	}
	for _, m := range s.Metrics {
		row := []string{m.Name, m.Kind, formatFloat(m.Value), strconv.FormatInt(m.Count, 10)}
		if err := cw.Write(row); err != nil {
			return err
		}
		for _, b := range m.Buckets {
			row := []string{
				m.Name + "{le=" + formatFloat(b.Le) + "}",
				"bucket", strconv.FormatInt(b.Count, 10), "",
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (version 0.0.4). Timers export as histograms in seconds with a
// single +Inf bucket; metric names are sanitised to the Prometheus charset.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	for _, m := range s.Metrics {
		name := promName(m.Name)
		switch m.Kind {
		case "counter":
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %s\n", name, name, formatFloat(m.Value)); err != nil {
				return err
			}
		case "gauge":
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name, formatFloat(m.Value)); err != nil {
				return err
			}
		case "histogram", "timer":
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
				return err
			}
			buckets := m.Buckets
			if len(buckets) == 0 {
				buckets = []BucketCount{{Le: math.Inf(1), Count: m.Count}}
			}
			for _, b := range buckets {
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, promLe(b.Le), b.Count); err != nil {
					return err
				}
			}
			if last := buckets[len(buckets)-1]; !math.IsInf(last.Le, 1) {
				if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, m.Count); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, formatFloat(m.Value), name, m.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteTo writes the snapshot to w in the named format: "json", "csv" or
// "prom" (Prometheus text).
func (s Snapshot) WriteTo(w io.Writer, format string) error {
	switch format {
	case "json":
		return s.WriteJSON(w)
	case "csv":
		return s.WriteCSV(w)
	case "prom":
		return s.WritePrometheus(w)
	default:
		return fmt.Errorf("obs: unknown export format %q (want json, csv or prom)", format)
	}
}

// WriteFile writes the snapshot to path, choosing the format from the
// extension: .json, .csv, or Prometheus text for anything else (.prom,
// .txt, extension-less).
func (s Snapshot) WriteFile(path string) error {
	format := "prom"
	switch strings.ToLower(filepath.Ext(path)) {
	case ".json":
		format = "json"
	case ".csv":
		format = "csv"
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.WriteTo(f, format); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// formatFloat renders v with the shortest round-trip representation —
// deterministic across runs and platforms.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promLe renders a bucket bound for the Prometheus le label.
func promLe(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promName maps a metric name onto the Prometheus charset
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			r = '_'
		}
		b.WriteRune(r)
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}
