// Package fixture holds hot-path shapes the analyzer must accept: pure
// arithmetic, transitively clean helpers, value struct literals, map
// iteration (an engine fact, not an error — steady-state re-imaging ranges
// maps without allocating), calls through func-typed hook fields (exempt by
// policy), devirtualized interface calls onto clean implementations, and a
// sanctioned warm-up allocation with a justification.
package fixture

//restorelint:hotpath
func hotClean(xs []int) int {
	sum := 0
	for _, x := range xs {
		sum += x
	}
	return sum
}

//restorelint:hotpath
func hotCallsClean(xs []int) int {
	return helperClean(xs)
}

func helperClean(xs []int) int {
	t := 0
	for i := 0; i < len(xs); i++ {
		t += xs[i]
	}
	return t
}

type point struct{ x, y int }

//restorelint:hotpath
func hotValueLit(a, b int) int {
	p := point{x: a, y: b} // value literal: stays on the stack
	return p.x + p.y
}

//restorelint:hotpath
func hotMapRange(m, dst map[int]int) {
	for k, v := range m {
		if dst[k] != v {
			dst[k] = v
		}
	}
}

type hooks struct{ fire func(int) }

//restorelint:hotpath
func hotHook(h *hooks, n int) {
	if h.fire != nil {
		h.fire(n) // dynamic hook call: the installer vouches for it
	}
}

type cleanGetter interface{ Val() int }

type cleanImpl struct{ v int }

func (c cleanImpl) Val() int { return c.v }

//restorelint:hotpath
func hotIfaceClean(g cleanGetter) int {
	return g.Val()
}

//restorelint:hotpath
func hotWarmup(n int) []int {
	//restorelint:allowalloc -- warm-up growth only; the buffer is reused across trials once sized
	buf := make([]int, n)
	return buf
}

func allocatingHelper(n int) []int {
	return make([]int, n) // legitimate for cold callers
}

// hotSanctionedEdge sanctions a call edge: the callee allocates for other
// callers, but this path only runs it outside steady state.
//
//restorelint:hotpath
func hotSanctionedEdge(n int) []int {
	//restorelint:allowalloc -- cold path: runs once per campaign, never per cycle
	return allocatingHelper(n)
}
