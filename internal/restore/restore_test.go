package restore

import (
	"errors"
	"testing"

	"repro/internal/arch"
	"repro/internal/isa"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

func newProcessor(t *testing.T, bench workload.Benchmark, cfg Config) (*Processor, *workload.Program) {
	t.Helper()
	prog := workload.MustGenerate(bench, workload.Config{Seed: 42, Scale: 0.25})
	m, err := prog.NewMemory()
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := pipeline.New(pipeline.DefaultConfig(), m, prog.Entry)
	if err != nil {
		t.Fatal(err)
	}
	return New(pipe, cfg), prog
}

// goldenRegs runs the architectural simulator for n instructions and
// returns its register state.
func goldenRegs(t *testing.T, prog *workload.Program, n uint64) ([32]uint64, uint64) {
	t.Helper()
	m, err := prog.NewMemory()
	if err != nil {
		t.Fatal(err)
	}
	g := arch.New(m, prog.Entry)
	if _, last, err := g.Run(n); err != nil || last.Exception != arch.ExcNone {
		t.Fatalf("golden run failed: %v %v", err, last.Exception)
	}
	return g.Regs, g.PC
}

func TestFaultFreeRunMatchesGolden(t *testing.T) {
	proc, prog := newProcessor(t, workload.Gzip, Config{Interval: 100})
	rep, err := proc.Run(20_000, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Retired < 20_000 {
		t.Fatalf("retired %d", rep.Retired)
	}
	if rep.ExceptionSymptoms != 0 || rep.DeadlockSymptoms != 0 {
		t.Errorf("fault-free run raised symptoms: %+v", rep)
	}
	if rep.Checkpoints < rep.Retired/100 {
		t.Errorf("too few checkpoints: %d for %d insts", rep.Checkpoints, rep.Retired)
	}

	want, _ := goldenRegs(t, prog, rep.Retired)
	got := proc.Pipeline().ArchRegs()
	if got != want {
		t.Error("architectural state diverged from golden on a fault-free run")
	}
}

// pointerLoop builds a program in which r10 permanently holds a live,
// never-renamed pointer that is dereferenced every iteration: corrupting it
// is guaranteed to surface as a memory access fault within a few dozen
// instructions — a deterministic miniature of the paper's dominant
// error-to-exception propagation path.
func pointerLoop(t *testing.T) *workload.Program {
	t.Helper()
	b := workload.NewBuilder("ptrloop")
	b.AllocData("data", make([]byte, 4096), 0x3) // RW at DataBase
	b.LoadImm(isa.Reg(10), workload.DataBase)
	b.Label("loop")
	b.Load(isa.OpLDQ, 2, 0, 10) // dereference the long-lived pointer
	b.Op(isa.OpADDQ, 3, 2, 3)
	b.OpLit(isa.OpADDQ, 4, 1, 4)
	b.Store(isa.OpSTQ, 3, 8, 10)
	b.OpLit(isa.OpXOR, 4, 0x1F, 5)
	b.OpLit(isa.OpSLL, 5, 2, 6)
	b.Op(isa.OpADDQ, 6, 5, 7)
	b.Branch(isa.OpBR, isa.RegZero, "loop")
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func newPointerLoopProcessor(t *testing.T, cfg Config) (*Processor, *workload.Program) {
	t.Helper()
	prog := pointerLoop(t)
	m, err := prog.NewMemory()
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := pipeline.New(pipeline.DefaultConfig(), m, prog.Entry)
	if err != nil {
		t.Fatal(err)
	}
	return New(pipe, cfg), prog
}

func TestExceptionSymptomRecovery(t *testing.T) {
	// Corrupt a live pointer (high bit: lands in unmapped space). The
	// next dereference raises an access fault; ReStore must roll back to
	// a pre-corruption checkpoint, replay, and converge with the golden
	// run as if nothing happened.
	proc, prog := newPointerLoopProcessor(t, Config{Interval: 100})
	if _, err := proc.Run(5_000, 500_000); err != nil {
		t.Fatal(err)
	}

	// Flip a high bit of the pointer so it lands in unmapped space.
	proc.Pipeline().CorruptArchReg(isa.Reg(10), 45)

	rep, err := proc.Run(20_000, 2_000_000)
	if err != nil {
		t.Fatalf("run after corruption: %v (report %+v)", err, rep)
	}
	if rep.ExceptionSymptoms == 0 {
		t.Fatal("corruption produced no exception symptom")
	}
	if rep.Rollbacks == 0 {
		t.Fatal("no rollback performed")
	}
	if rep.VanishedSymptoms == 0 {
		t.Error("replay did not record the vanished exception")
	}
	if rep.GenuineExceptions != 0 {
		t.Error("recovered fault misclassified as genuine")
	}

	want, _ := goldenRegs(t, prog, rep.Retired)
	got := proc.Pipeline().ArchRegs()
	if got != want {
		t.Error("architectural state corrupt after recovery")
	}
}

func TestGenuineExceptionDetected(t *testing.T) {
	// A program whose main path truly faults: ReStore rolls back once,
	// replays, sees the exception recur at the same point, and reports it
	// as genuine.
	b := workload.NewBuilder("genuine")
	b.LoadImm(1, 10)
	b.Label("loop")
	b.OpLit(isa.OpSUBQ, 1, 1, 1)
	b.Branch(isa.OpBGT, 1, "loop")
	b.LoadImm(2, 1<<44)
	b.Load(isa.OpLDQ, 3, 0, 2) // wild load, architecturally reachable
	b.Emit(isa.Inst{Op: isa.OpHALT})
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := prog.NewMemory()
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := pipeline.New(pipeline.DefaultConfig(), m, prog.Entry)
	if err != nil {
		t.Fatal(err)
	}
	proc := New(pipe, Config{Interval: 50})
	rep, err := proc.Run(10_000, 500_000)
	if !errors.Is(err, ErrGenuineException) {
		t.Fatalf("err = %v, want genuine exception (report %+v)", err, rep)
	}
	if rep.GenuineExceptions != 1 {
		t.Errorf("genuine exceptions = %d", rep.GenuineExceptions)
	}
	if rep.Rollbacks == 0 {
		t.Error("genuine exception must be confirmed by one rollback+replay")
	}
}

func TestHaltTerminatesRun(t *testing.T) {
	b := workload.NewBuilder("halts")
	b.LoadImm(1, 3)
	b.Label("loop")
	b.OpLit(isa.OpSUBQ, 1, 1, 1)
	b.Branch(isa.OpBGT, 1, "loop")
	b.Emit(isa.Inst{Op: isa.OpHALT})
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := prog.NewMemory()
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := pipeline.New(pipeline.DefaultConfig(), m, prog.Entry)
	if err != nil {
		t.Fatal(err)
	}
	proc := New(pipe, Config{Interval: 100})
	rep, err := proc.Run(1_000_000, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Retired >= 1_000_000 {
		t.Error("run did not stop at halt")
	}
}

func TestBranchSymptomFalsePositives(t *testing.T) {
	// With the Perfect confidence oracle, every misprediction is a
	// symptom; on a fault-free run every resulting rollback must be
	// classified a false positive, and execution must still make forward
	// progress with correct architectural state.
	pcfg := pipeline.DefaultConfig()
	pcfg.Confidence = pipeline.ConfidencePerfect
	prog := workload.MustGenerate(workload.GCC, workload.Config{Seed: 42, Scale: 0.25})
	m, err := prog.NewMemory()
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := pipeline.New(pcfg, m, prog.Entry)
	if err != nil {
		t.Fatal(err)
	}
	proc := New(pipe, Config{Interval: 100})
	rep, err := proc.Run(15_000, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BranchSymptoms == 0 {
		t.Fatal("oracle confidence produced no branch symptoms")
	}
	if rep.Rollbacks == 0 {
		t.Fatal("no rollbacks")
	}
	if rep.FalsePositives == 0 {
		t.Error("fault-free rollbacks not classified as false positives")
	}
	if rep.DetectedErrors != 0 {
		t.Errorf("spurious detected errors: %d", rep.DetectedErrors)
	}
	want, _ := goldenRegs(t, prog, rep.Retired)
	if proc.Pipeline().ArchRegs() != want {
		t.Error("architectural state diverged under rollback pressure")
	}
}

func TestDelayedPolicyCoalescesRollbacks(t *testing.T) {
	run := func(policy Policy) Report {
		pcfg := pipeline.DefaultConfig()
		pcfg.Confidence = pipeline.ConfidencePerfect
		prog := workload.MustGenerate(workload.GCC, workload.Config{Seed: 42, Scale: 0.25})
		m, err := prog.NewMemory()
		if err != nil {
			t.Fatal(err)
		}
		pipe, err := pipeline.New(pcfg, m, prog.Entry)
		if err != nil {
			t.Fatal(err)
		}
		proc := New(pipe, Config{Interval: 200, Policy: policy})
		rep, err := proc.Run(10_000, 10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	imm := run(PolicyImmediate)
	del := run(PolicyDelayed)
	if imm.Rollbacks == 0 || del.Rollbacks == 0 {
		t.Fatalf("rollbacks: imm=%d del=%d", imm.Rollbacks, del.Rollbacks)
	}
	if del.Rollbacks > imm.Rollbacks {
		t.Errorf("delayed policy produced MORE rollbacks (%d) than immediate (%d)",
			del.Rollbacks, imm.Rollbacks)
	}
}

func TestDynamicTuningMutesSymptoms(t *testing.T) {
	pcfg := pipeline.DefaultConfig()
	pcfg.Confidence = pipeline.ConfidencePerfect // symptom storm
	prog := workload.MustGenerate(workload.GCC, workload.Config{Seed: 42, Scale: 0.25})
	m, err := prog.NewMemory()
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := pipeline.New(pcfg, m, prog.Entry)
	if err != nil {
		t.Fatal(err)
	}
	proc := New(pipe, Config{
		Interval:     100,
		TuneWindow:   2000,
		TuneLimit:    3,
		TuneCooldown: 2000,
	})
	rep, err := proc.Run(15_000, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MutedSymptoms == 0 {
		t.Errorf("tuning never muted a symptom under a symptom storm: %+v", rep)
	}

	// The same run without tuning must see more rollbacks.
	m2, err := prog.NewMemory()
	if err != nil {
		t.Fatal(err)
	}
	pipe2, err := pipeline.New(pcfg, m2, prog.Entry)
	if err != nil {
		t.Fatal(err)
	}
	proc2 := New(pipe2, Config{Interval: 100})
	rep2, err := proc2.Run(15_000, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Rollbacks <= rep.Rollbacks {
		t.Errorf("tuning did not reduce rollbacks: with=%d without=%d",
			rep.Rollbacks, rep2.Rollbacks)
	}
}

func TestDeadlockSymptomRecovery(t *testing.T) {
	// Corrupt the ROB occupancy count: the machine believes it is full,
	// rename stalls, commit runs dry against ghost entries, and the
	// watchdog declares deadlock. ReStore must roll back and continue.
	proc, prog := newProcessor(t, workload.Gzip, Config{Interval: 100})
	if _, err := proc.Run(3_000, 500_000); err != nil {
		t.Fatal(err)
	}
	s := proc.Pipeline().State()
	found := false
	for i, e := range s.Elements() {
		if e.Name == "rob.count" {
			s.Flip(pipeline.BitRef{Elem: i, Bit: 6})
			found = true
			break
		}
	}
	if !found {
		t.Fatal("rob.count element not registered")
	}
	rep, err := proc.Run(10_000, 2_000_000)
	if err != nil {
		t.Fatalf("deadlock not recovered: %v", err)
	}
	if rep.DeadlockSymptoms == 0 {
		t.Error("no deadlock symptom recorded")
	}
	want, _ := goldenRegs(t, prog, rep.Retired)
	if proc.Pipeline().ArchRegs() != want {
		t.Error("architectural state corrupt after deadlock recovery")
	}
}

func TestDisabledDetectors(t *testing.T) {
	proc, _ := newPointerLoopProcessor(t, Config{
		Interval:                100,
		DisableExceptionSymptom: true,
	})
	if _, err := proc.Run(3_000, 500_000); err != nil {
		t.Fatal(err)
	}
	proc.Pipeline().CorruptArchReg(isa.Reg(10), 45)
	_, err := proc.Run(20_000, 2_000_000)
	if !errors.Is(err, ErrGenuineException) {
		t.Errorf("with exceptions disabled the fault should terminate the run, got %v", err)
	}
}

func TestCycleBudget(t *testing.T) {
	proc, _ := newProcessor(t, workload.Gzip, Config{Interval: 100})
	_, err := proc.Run(1_000_000_000, 1000)
	if !errors.Is(err, ErrCycleBudget) {
		t.Errorf("err = %v, want cycle budget", err)
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	c.applyDefaults()
	if c.Interval != 100 || c.Checkpoints != 2 || c.Policy != PolicyImmediate || c.EventLogSize != 8192 {
		t.Errorf("defaults: %+v", c)
	}
}

func TestEventLog(t *testing.T) {
	l := NewEventLog(4)
	if l.Len() != 4 {
		t.Errorf("len = %d", l.Len())
	}
	rec := BranchRecord{Index: 10, PC: 0x100, Taken: true, Target: 0x200}
	l.Append(rec)
	got, ok := l.Lookup(10)
	if !ok || !got.Equal(rec) {
		t.Errorf("lookup = %+v, %v", got, ok)
	}
	if _, ok := l.Lookup(14); ok {
		t.Error("aliased slot returned stale record")
	}
	taken, target, ok := l.Outcome(10)
	if !ok || !taken || target != 0x200 {
		t.Errorf("outcome = %v %#x %v", taken, target, ok)
	}
	if _, _, ok := l.Outcome(99); ok {
		t.Error("outcome for unknown index")
	}
	// Overwrite on wraparound.
	l.Append(BranchRecord{Index: 14, PC: 0x300})
	if _, ok := l.Lookup(10); ok {
		t.Error("overwritten record still visible")
	}
	// Degenerate size.
	l2 := NewEventLog(0)
	if l2.Len() != 1 {
		t.Errorf("clamped len = %d", l2.Len())
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero-is-defaulted", Config{}, true},
		{"explicit", Config{Interval: 100, Checkpoints: 2, EventLogSize: 64, Policy: PolicyDelayed}, true},
		{"negative-checkpoints", Config{Checkpoints: -1}, false},
		{"negative-eventlog", Config{EventLogSize: -64}, false},
		{"unknown-policy", Config{Policy: Policy(77)}, false},
	}
	for _, tc := range cases {
		if err := tc.cfg.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestNewPanicsOnInvalidConfig(t *testing.T) {
	// Regression: a negative EventLogSize used to slip past the zero-only
	// defaulting and blow up later (modulo by a ring of negative size). It
	// must be rejected up front.
	prog := workload.MustGenerate(workload.Gzip, workload.Config{Seed: 42, Scale: 0.25})
	m, err := prog.NewMemory()
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := pipeline.New(pipeline.DefaultConfig(), m, prog.Entry)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("New accepted EventLogSize -1")
		}
	}()
	New(pipe, Config{EventLogSize: -1})
}

func TestEventLogSizeClamps(t *testing.T) {
	// Regression: size <= 0 used to divide by zero in the ring indexing.
	for _, size := range []int{0, -3} {
		if got := NewEventLog(size).Len(); got != 1 {
			t.Errorf("NewEventLog(%d).Len() = %d, want 1", size, got)
		}
		if got := NewLoadValueQueue(size).Len(); got != 1 {
			t.Errorf("NewLoadValueQueue(%d).Len() = %d, want 1", size, got)
		}
	}
	// The clamped ring must still be usable.
	l := NewEventLog(0)
	l.Append(BranchRecord{Index: 5, Taken: true})
	if _, ok := l.Lookup(5); !ok {
		t.Error("clamped event log lost its record")
	}
	q := NewLoadValueQueue(-1)
	q.Append(LoadRecord{Index: 9, Value: 3})
	if rec, ok := q.Lookup(9); !ok || rec.Value != 3 {
		t.Error("clamped load value queue lost its record")
	}
}
