package service

import (
	"bufio"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// startTestServer brings up a daemon on a loopback port and returns a client
// pointed at it.
func startTestServer(t *testing.T, root string) (*Server, *Client) {
	t.Helper()
	svc := newTestService(t, root)
	srv := NewServer(svc)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	return srv, &Client{Base: addr}
}

func TestHTTPLifecycle(t *testing.T) {
	root := t.TempDir()
	srv, cl := startTestServer(t, root)
	defer srv.Shutdown()

	if !cl.Healthy() {
		t.Fatal("daemon not healthy")
	}

	// The address file points clients at the daemon.
	discovered, err := NewClientFromRoot(root)
	if err != nil {
		t.Fatalf("NewClientFromRoot: %v", err)
	}
	if !discovered.Healthy() {
		t.Fatal("discovered client not healthy")
	}

	j, err := cl.Submit(tinySpec("gzip"))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if j.State != StateQueued && j.State != StateRunning {
		t.Fatalf("fresh job state %s", j.State)
	}

	final, err := cl.Wait(j.ID, 10*time.Millisecond, nil)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if final.State != StateDone {
		t.Fatalf("job ended %s (error %q), want done", final.State, final.Error)
	}
	if len(final.Campaigns) == 0 {
		t.Fatal("done job lists no campaigns")
	}

	jobs, err := cl.Jobs()
	if err != nil {
		t.Fatalf("Jobs: %v", err)
	}
	if len(jobs) != 1 || jobs[0].ID != j.ID {
		t.Fatalf("Jobs = %v, want the one job", jobs)
	}

	// Cancelling a terminal job is a no-op, not an error.
	got, err := cl.Cancel(j.ID)
	if err != nil {
		t.Fatalf("Cancel after done: %v", err)
	}
	if got.State != StateDone {
		t.Fatalf("cancel of a done job changed state to %s", got.State)
	}
}

func TestHTTPErrors(t *testing.T) {
	srv, cl := startTestServer(t, t.TempDir())
	defer srv.Shutdown()

	if _, err := cl.Submit(JobSpec{Experiment: "nope"}); err == nil ||
		!strings.Contains(err.Error(), "nope") {
		t.Fatalf("bad submit error = %v, want the rejected experiment named", err)
	}
	if _, err := cl.Job("job-999999"); err == nil ||
		!strings.Contains(err.Error(), "job-999999") {
		t.Fatalf("missing job error = %v", err)
	}
	if _, err := cl.Cancel("job-999999"); err == nil {
		t.Fatal("cancel of a missing job succeeded")
	}

	// Unknown spec fields are rejected — a misspelled field must not submit
	// a silently different campaign.
	resp, err := http.Post(cl.url("/api/v1/jobs"), "application/json",
		strings.NewReader(`{"experiment":"fig2","trails":0.5}`))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown-field submit: status %d, want 400", resp.StatusCode)
	}
}

func TestHTTPMetrics(t *testing.T) {
	srv, cl := startTestServer(t, t.TempDir())
	defer srv.Shutdown()

	j, err := cl.Submit(tinySpec("gzip"))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := cl.Wait(j.ID, 10*time.Millisecond, nil); err != nil {
		t.Fatalf("Wait: %v", err)
	}

	resp, err := http.Get(cl.url("/metrics"))
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"service_queue_depth",
		"service_jobs_done 1",
		"service_trials_completed_total",
		"campaign_vm_trials_total", // the engine's own telemetry flows through
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestHTTPEvents reads the SSE stream: an initial snapshot, then updates
// through to the terminal state.
func TestHTTPEvents(t *testing.T) {
	srv, cl := startTestServer(t, t.TempDir())
	defer srv.Shutdown()

	j, err := cl.Submit(tinySpec("gzip"))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	resp, err := http.Get(cl.url("/api/v1/jobs/" + j.ID + "/events"))
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q", ct)
	}

	var events []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			events = append(events, data)
		}
	}
	if len(events) == 0 {
		t.Fatal("no SSE events received")
	}
	last := events[len(events)-1]
	if !strings.Contains(last, `"state": "done"`) && !strings.Contains(last, `"state":"done"`) {
		t.Fatalf("final event %q does not carry the terminal state", last)
	}
}

func TestShutdownWithdrawsAddr(t *testing.T) {
	root := t.TempDir()
	srv, cl := startTestServer(t, root)
	if !cl.Healthy() {
		t.Fatal("daemon not healthy")
	}
	if err := srv.Shutdown(); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := ReadAddr(root); err == nil {
		t.Fatal("serve.addr survived a clean shutdown")
	}
	if cl.Healthy() {
		t.Fatal("daemon still answering after shutdown")
	}
}
