// Eventlog: demonstrate the Section 3.2.3 mechanisms — branch-outcome event
// logs that detect soft errors by comparing the original and redundant
// executions, and dynamic tuning that mutes symptoms when false positives
// cluster.
//
// Part 1 injects a fault that corrupts a branch input: the high-confidence
// misprediction triggers a rollback, and during replay the event log
// disagrees with the original run — a DETECTED soft error, not just a
// recovered one.
//
// Part 2 runs a fault-free workload under an oracle confidence predictor
// (every misprediction is a symptom — a worst-case false-positive storm)
// with and without dynamic tuning, showing the tuning trading a little
// error coverage for a large cut in rollback overhead.
//
// Run with: go run ./examples/eventlog
package main

import (
	"fmt"
	"log"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/pipeline"
	"repro/internal/restore"
	"repro/internal/workload"
)

func main() {
	if err := part1(); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := part2(); err != nil {
		log.Fatal(err)
	}
}

// part1: event-log error detection on a branch-input corruption.
func part1() error {
	fmt.Println("--- part 1: event-log detection of a corrupted branch input ---")

	// A loop whose branch direction depends on r12, which is never
	// renamed away: corrupting r12 flips upcoming branch outcomes.
	b := workload.NewBuilder("branchloop")
	b.AllocData("data", make([]byte, 4096), mem.PermRW)
	b.LoadImm(isa.Reg(12), 0) // steering value: 0 = fall through
	b.LoadImm(isa.Reg(10), workload.DataBase)
	b.Label("loop")
	b.Op(isa.OpADDQ, 3, 12, 4) // r4 = r3 + r12
	b.Branch(isa.OpBNE, 12, "rare")
	b.OpLit(isa.OpADDQ, 3, 1, 3) // common path
	b.Branch(isa.OpBR, isa.RegZero, "join")
	b.Label("rare")
	b.OpLit(isa.OpADDQ, 3, 2, 3)
	b.Label("join")
	b.Store(isa.OpSTQ, 3, 0, 10)
	b.Branch(isa.OpBR, isa.RegZero, "loop")
	prog, err := b.Build()
	if err != nil {
		return err
	}
	m, err := prog.NewMemory()
	if err != nil {
		return err
	}
	pipe, err := pipeline.New(pipeline.DefaultConfig(), m, prog.Entry)
	if err != nil {
		return err
	}
	// The DELAYED rollback policy lets the corrupted branch COMMIT its
	// wrong outcome into the event log before the interval-end rollback;
	// the replay then produces a differing outcome at the same position —
	// which is precisely how the event log detects the soft error.
	proc := restore.New(pipe, restore.Config{
		Interval: 100,
		Policy:   restore.PolicyDelayed,
	})

	if _, err := proc.Run(20_000, 2_000_000); err != nil {
		return err
	}
	fmt.Println("warmed up 20k instructions; BNE r12 is high-confidence not-taken")

	// Corrupt the branch input: the next BNE resolves taken — a
	// high-confidence misprediction, i.e. a ReStore symptom.
	pipe.CorruptArchReg(isa.Reg(12), 3)
	fmt.Println("*** injected: bit 3 of r12 flipped; branch input corrupted ***")

	rep, err := proc.Run(40_000, 4_000_000)
	if err != nil {
		return err
	}
	fmt.Printf("branch symptoms: %d, rollbacks: %d\n", rep.BranchSymptoms, rep.Rollbacks)
	fmt.Printf("event-log detected errors: %d (original and replay disagreed)\n", rep.DetectedErrors)
	if rep.DetectedErrors > 0 {
		fmt.Println("-> the soft error was DETECTED via time redundancy, on demand")
	}
	// Note: rollback restored r12 from the checkpoint, so the corruption
	// is also recovered; the program continues on the correct path.
	return nil
}

// part2: dynamic tuning under a false-positive storm.
func part2() error {
	fmt.Println("--- part 2: dynamic tuning under a false-positive storm ---")

	run := func(tune bool) (restore.Report, error) {
		pcfg := pipeline.DefaultConfig()
		pcfg.Confidence = pipeline.ConfidencePerfect // every mispredict fires
		prog := workload.MustGenerate(workload.GCC, workload.Config{Seed: 5})
		m, err := prog.NewMemory()
		if err != nil {
			return restore.Report{}, err
		}
		pipe, err := pipeline.New(pcfg, m, prog.Entry)
		if err != nil {
			return restore.Report{}, err
		}
		cfg := restore.Config{Interval: 100}
		if tune {
			cfg.TuneWindow = 2_000
			cfg.TuneLimit = 2
			cfg.TuneCooldown = 5_000
		}
		proc := restore.New(pipe, cfg)
		return proc.Run(40_000, 40_000_000)
	}

	plain, err := run(false)
	if err != nil {
		return err
	}
	tuned, err := run(true)
	if err != nil {
		return err
	}

	fmt.Printf("%-22s %12s %12s\n", "", "no tuning", "with tuning")
	fmt.Printf("%-22s %12d %12d\n", "rollbacks", plain.Rollbacks, tuned.Rollbacks)
	fmt.Printf("%-22s %12d %12d\n", "muted symptoms", plain.MutedSymptoms, tuned.MutedSymptoms)
	fmt.Printf("%-22s %12d %12d\n", "cycles for 40k insts", plain.Cycles, tuned.Cycles)
	speedup := float64(plain.Cycles) / float64(tuned.Cycles)
	fmt.Printf("\ndynamic tuning cut rollbacks %.1fx and sped execution up %.2fx\n",
		float64(plain.Rollbacks)/float64(max64(tuned.Rollbacks, 1)), speedup)
	fmt.Println("(the muted window trades a sliver of coverage for that performance,")
	fmt.Println("exactly the knob Section 3.2.3 describes)")
	return nil
}

func max64(v, floor uint64) uint64 {
	if v < floor {
		return floor
	}
	return v
}
