package dmr

import (
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/asm"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

func newCore(t *testing.T, bench workload.Benchmark, cfg Config) (*Core, *workload.Program) {
	t.Helper()
	prog := workload.MustGenerate(bench, workload.Config{Seed: 21, Scale: 0.5})
	m, err := prog.NewMemory()
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := pipeline.New(pipeline.DefaultConfig(), m, prog.Entry)
	if err != nil {
		t.Fatal(err)
	}
	return New(pipe, cfg), prog
}

func goldenRegs(t *testing.T, prog *workload.Program, n uint64) [32]uint64 {
	t.Helper()
	m, err := prog.NewMemory()
	if err != nil {
		t.Fatal(err)
	}
	g := arch.New(m, prog.Entry)
	if _, last, err := g.Run(n); err != nil || last.Exception != arch.ExcNone {
		t.Fatalf("golden run failed: %v %v", err, last.Exception)
	}
	return g.Regs
}

func TestFaultFreeLockstep(t *testing.T) {
	core, prog := newCore(t, workload.Gzip, Config{})
	rep, err := core.Run(20_000, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DetectedErrors != 0 || rep.Rollbacks != 0 {
		t.Errorf("fault-free divergences: %+v", rep)
	}
	if rep.Retired < 20_000 {
		t.Errorf("retired %d", rep.Retired)
	}
	want := goldenRegs(t, prog, core.MainCommitted())
	if core.Main().ArchRegs() != want {
		t.Error("main core diverged from golden")
	}
}

// liveRegLoop is a program in which r10 (a pointer) and r3 (an accumulator
// that feeds a store every iteration) stay architecturally live and are
// never renamed away, so corrupting either is guaranteed to surface.
func liveRegLoop(t *testing.T) *workload.Program {
	t.Helper()
	return asm.MustAssemble("liveloop", `
		.data buf 4096
		.base r10 buf
	loop:
		ldq  r2, 0(r10)
		addq r3, r2, r3
		stq  r3, 8(r10)
		xor  r3, r2, r4
		srl  r4, #3, r5
		br   loop
	`)
}

func newLiveCore(t *testing.T) (*Core, *workload.Program) {
	t.Helper()
	prog := liveRegLoop(t)
	m, err := prog.NewMemory()
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := pipeline.New(pipeline.DefaultConfig(), m, prog.Entry)
	if err != nil {
		t.Fatal(err)
	}
	return New(pipe, Config{}), prog
}

func TestDetectsAndRecoversInjectedFault(t *testing.T) {
	core, prog := newLiveCore(t)
	if _, err := core.Run(5_000, 1_000_000); err != nil {
		t.Fatal(err)
	}

	// Corrupt a low bit of the live pointer in the MAIN core only: loads
	// now read a different (still mapped) location, the accumulator
	// diverges, and the next store commit disagrees with the shadow's.
	core.Main().CorruptArchReg(10, 4)

	rep, err := core.Run(25_000, 4_000_000)
	if err != nil {
		t.Fatalf("unrecovered: %v (%+v)", err, rep)
	}
	if rep.DetectedErrors == 0 || rep.Rollbacks == 0 {
		t.Fatalf("live corruption not detected: %+v", rep)
	}
	want := goldenRegs(t, prog, core.MainCommitted())
	if core.Main().ArchRegs() != want {
		t.Fatal("main state corrupt after DMR recovery")
	}
	t.Logf("detected=%d rollbacks=%d", rep.DetectedErrors, rep.Rollbacks)
}

func TestDetectsWildPointerBeforeCommitDamage(t *testing.T) {
	core, prog := newLiveCore(t)
	if _, err := core.Run(5_000, 1_000_000); err != nil {
		t.Fatal(err)
	}
	// High-bit pointer corruption: in a bare pipeline this raises an
	// access fault; under DMR the exception-vs-normal commit pair is a
	// divergence, recovered like any other.
	core.Main().CorruptArchReg(10, 45)
	rep, err := core.Run(25_000, 4_000_000)
	if err != nil {
		t.Fatalf("unrecovered: %v", err)
	}
	if rep.DetectedErrors == 0 {
		t.Fatalf("wild pointer not detected: %+v", rep)
	}
	want := goldenRegs(t, prog, core.MainCommitted())
	if core.Main().ArchRegs() != want {
		t.Error("state corrupt after recovery")
	}
	t.Logf("detected=%d rollbacks=%d", rep.DetectedErrors, rep.Rollbacks)
}

func TestRandomFlipCoverage(t *testing.T) {
	// DMR's selling point: ANY fault that architecturally diverges is
	// detected at commit. Sweep random flips and verify every completed
	// run ends on the golden path.
	rng := rand.New(rand.NewSource(4))
	const trials = 15
	detected, cleanRuns := 0, 0
	for i := 0; i < trials; i++ {
		core, prog := newCore(t, workload.Gzip, Config{})
		if _, err := core.Run(3_000, 1_000_000); err != nil {
			t.Fatal(err)
		}
		space := core.Main().State()
		ref, _ := space.NthBit(uint64(rng.Int63n(int64(space.TotalBits(false)))))
		space.Flip(ref)

		rep, err := core.Run(13_000, 8_000_000)
		if err != nil {
			// Persistent divergence is possible if the flip landed in
			// state older than the checkpoint horizon; rare.
			t.Logf("trial %d: %v", i, err)
			continue
		}
		detected += int(rep.DetectedErrors)
		if core.Main().ArchRegs() == goldenRegs(t, prog, core.MainCommitted()) {
			cleanRuns++
		}
	}
	t.Logf("%d/%d clean completions, %d detections", cleanRuns, trials, detected)
	if cleanRuns < trials*8/10 {
		t.Errorf("only %d/%d runs ended clean under DMR", cleanRuns, trials)
	}
}

func TestGenuineExceptionSurfaces(t *testing.T) {
	// A program whose main path truly faults: both cores raise the same
	// exception, so DMR reports it as genuine instead of diverging.
	prog := asm.MustAssemble("genuine", `
		.imm r1 0x100000000000
		ldq  r2, 0(r1)        ; architecturally reachable wild load
		halt
	`)
	m, err := prog.NewMemory()
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := pipeline.New(pipeline.DefaultConfig(), m, prog.Entry)
	if err != nil {
		t.Fatal(err)
	}
	core := New(pipe, Config{})
	rep, err := core.Run(1_000, 100_000)
	if err == nil {
		t.Fatalf("genuine exception not surfaced: %+v", rep)
	}
	if rep.Rollbacks != 0 {
		t.Errorf("agreed exception should not trigger recovery: %+v", rep)
	}
}

func TestHaltStopsBothCores(t *testing.T) {
	prog := asm.MustAssemble("halts", `
		.imm r1 200
	loop:
		subq r1, #1, r1
		bgt  r1, loop
		halt
	`)
	m, err := prog.NewMemory()
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := pipeline.New(pipeline.DefaultConfig(), m, prog.Entry)
	if err != nil {
		t.Fatal(err)
	}
	core := New(pipe, Config{})
	rep, err := core.Run(1_000_000, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Retired >= 1_000_000 || rep.DetectedErrors != 0 {
		t.Errorf("halt handling wrong: %+v", rep)
	}
}
