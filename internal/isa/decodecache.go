package isa

// DecodeCache memoises Decode over a program's static code image so that
// campaigns decode each instruction once instead of once per fetched word
// per cycle per trial. Decode is a pure function of the instruction word,
// which makes the cache unconditionally sound: Lookup only returns a hit
// when the fetched word still equals the word the entry was decoded from,
// so self-modified or fault-corrupted code misses and falls back to Decode.
//
// A DecodeCache is immutable after construction and safe to share read-only
// across pipeline clones and parallel campaign workers.
type DecodeCache struct {
	base  uint64
	words []uint32
	insts []Inst
}

// NewDecodeCache decodes every word of a code image based at base (the
// workload's Program.CodeBase / Program.Code). The code slice is copied, so
// the cache stays valid whatever the caller later does with it.
func NewDecodeCache(base uint64, code []uint32) *DecodeCache {
	d := &DecodeCache{
		base:  base,
		words: make([]uint32, len(code)),
		insts: make([]Inst, len(code)),
	}
	copy(d.words, code)
	for i, w := range code {
		d.insts[i] = Decode(w)
	}
	return d
}

// Len returns the number of cached instructions.
func (d *DecodeCache) Len() int { return len(d.insts) }

// Lookup returns the pre-decoded instruction at pc if and only if pc is an
// aligned address inside the cached image and the fetched word matches the
// word the entry was built from. Any mismatch — wild pc from a corrupted
// fetch latch, unaligned address, word rewritten in memory — reports a miss
// and the caller decodes the word itself.
func (d *DecodeCache) Lookup(pc uint64, word uint32) (Inst, bool) {
	off := pc - d.base
	idx := off / InstBytes
	if off%InstBytes != 0 || idx >= uint64(len(d.words)) || d.words[idx] != word {
		return Inst{}, false
	}
	return d.insts[idx], true
}
