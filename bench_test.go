// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation, plus micro-benchmarks of the substrates they stand on. Each
// figure benchmark runs a (reduced) campaign per iteration and reports the
// headline quantity it regenerates as a custom metric, so
// `go test -bench=. -benchmem` doubles as a smoke reproduction of the whole
// evaluation. Paper-scale runs use cmd/restore-sim.
package main

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/asm"
	"repro/internal/dmr"
	"repro/internal/experiments"
	"repro/internal/harden"
	"repro/internal/inject"
	"repro/internal/isa"
	"repro/internal/perf"
	"repro/internal/pipeline"
	"repro/internal/restore"
	"repro/internal/workload"
)

// benchOpts keeps per-iteration campaigns small enough to benchmark.
func benchOpts() experiments.Options {
	return experiments.Options{
		Seed:        42,
		Scale:       0.5,
		TrialFactor: 0.05,
		Benchmarks:  []workload.Benchmark{workload.MCF, workload.Gzip},
	}
}

// BenchmarkFig2 regenerates the software-level injection campaign of
// Figure 2 and reports the masked fraction (paper: ~0.59).
func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig2(benchOpts(), false)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Table.Cell("masked", "25"), "masked-frac")
		b.ReportMetric(res.Table.Cell("exception", "100"), "exc@100-frac")
	}
}

// BenchmarkFig2Low32 regenerates the Section 3.1 low-32-bit variant.
func BenchmarkFig2Low32(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig2(benchOpts(), true)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Table.Cell("exception", "100"), "exc@100-frac")
	}
}

// BenchmarkFig4 regenerates the microarchitectural campaign with perfect
// cfv identification and reports the baseline failure rate (paper: ~0.07)
// and the uncovered rate at a 100-instruction interval (paper: ~half the
// failures covered).
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp, err := experiments.Campaign(benchOpts(), experiments.CampaignConfig{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(exp.RawFailureRate(), "fail-frac")
		b.ReportMetric(exp.FailureRateAt(100, inject.DetectorPerfect), "fail@100-frac")
	}
}

// BenchmarkFig4Latches regenerates the Section 5.1.2 latch-only campaign
// (paper: symptoms cover ~75% of latch-origin failures at 100 insts).
func BenchmarkFig4Latches(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp, err := experiments.Campaign(benchOpts(), experiments.CampaignConfig{LatchesOnly: true})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(exp.RawFailureRate(), "fail-frac")
		b.ReportMetric(exp.FailureRateAt(100, inject.DetectorPerfect), "fail@100-frac")
	}
}

// BenchmarkFig5 regenerates the JRS-confidence classification of Figure 5
// and the Section 5.2.1 oracle-confidence ablation over the same campaign.
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp, err := experiments.Campaign(benchOpts(), experiments.CampaignConfig{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(exp.FailureRateAt(100, inject.DetectorJRS), "fail@100-jrs")
		b.ReportMetric(exp.FailureRateAt(100, inject.DetectorOracleConfidence), "fail@100-oracle")
	}
}

// BenchmarkFig6 regenerates the hardened-pipeline campaign of Figure 6
// (paper: ~1% failures remain under lhf+ReStore).
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp, err := experiments.Campaign(benchOpts(), experiments.CampaignConfig{
			Harden: harden.LowHangingFruit,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(exp.RawFailureRate(), "lhf-fail-frac")
		b.ReportMetric(exp.FailureRateAt(100, inject.DetectorJRS), "combined-fail-frac")
	}
}

// BenchmarkFig7 regenerates the false-positive performance model (paper:
// ~6% slowdown at a 100-instruction interval; delayed wins past ~500).
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(perf.Speedup(res.Mean, 100, restore.PolicyImmediate), "speedup@100")
		b.ReportMetric(perf.Speedup(res.Mean, 1000, restore.PolicyDelayed), "delayed@1000")
	}
}

// BenchmarkFig8 regenerates the FIT scaling model (paper: 2x / 7x MTBF).
func BenchmarkFig8(b *testing.B) {
	opts := benchOpts()
	plain, err := experiments.Campaign(opts, experiments.CampaignConfig{})
	if err != nil {
		b.Fatal(err)
	}
	hardened, err := experiments.Campaign(opts, experiments.CampaignConfig{Harden: harden.LowHangingFruit})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.Fig8(plain, hardened, 100)
		b.ReportMetric(res.Improvements["ReStore"], "restore-mtbf-x")
		b.ReportMetric(res.Improvements["lhf+ReStore"], "combined-mtbf-x")
	}
}

// ---------------------------------------------------------------------------
// Campaign engine: serial vs parallel across the full seven-benchmark suite.
// Each sub-benchmark runs the identical campaign configuration with Workers
// 0 and 4; the speedup is the ratio of their ns/op (wall clock — it tracks
// available CPUs, so expect ~1x on a single-core machine and ~N/x on N
// cores). Results are bit-identical either way, which
// TestUArchParallelMatchesSerial pins. Every sub-benchmark also reports
// trials/s, the number the committed BENCH_pipeline.json baseline and the
// CI bench gate track.

func uarchEngineBench(bench workload.Benchmark) inject.UArchConfig {
	return inject.UArchConfig{
		Bench: bench, Seed: 7, Scale: 0.5,
		Points: 5, TrialsPerPoint: 30,
		WarmupCycles: 5_000, SpreadCycles: 10_000, WindowCycles: 5_000,
	}
}

func vmEngineBench(bench workload.Benchmark) inject.VMConfig {
	return inject.VMConfig{
		Bench: bench, Seed: 7, Scale: 0.5,
		Trials: 160, Points: 20, Window: 20_000, Spread: 40_000,
	}
}

// BenchmarkUArchCampaign sweeps the microarchitectural campaign engine over
// every benchmark, serial and with 4 workers.
func BenchmarkUArchCampaign(b *testing.B) {
	for _, mode := range []struct {
		name    string
		workers int
	}{{"serial", 0}, {"parallel4", 4}} {
		b.Run(mode.name, func(b *testing.B) {
			for _, bench := range workload.Benchmarks() {
				b.Run(string(bench), func(b *testing.B) {
					cfg := uarchEngineBench(bench)
					cfg.Workers = mode.workers
					trials := cfg.Points * cfg.TrialsPerPoint
					for i := 0; i < b.N; i++ {
						if _, err := inject.RunUArch(cfg); err != nil {
							b.Fatal(err)
						}
					}
					b.ReportMetric(float64(trials*b.N)/b.Elapsed().Seconds(), "trials/s")
				})
			}
		})
	}
}

// BenchmarkVMCampaign sweeps the software-level campaign engine over every
// benchmark, serial and with 4 workers.
func BenchmarkVMCampaign(b *testing.B) {
	for _, mode := range []struct {
		name    string
		workers int
	}{{"serial", 0}, {"parallel4", 4}} {
		b.Run(mode.name, func(b *testing.B) {
			for _, bench := range workload.Benchmarks() {
				b.Run(string(bench), func(b *testing.B) {
					cfg := vmEngineBench(bench)
					cfg.Workers = mode.workers
					for i := 0; i < b.N; i++ {
						if _, err := inject.RunVM(cfg); err != nil {
							b.Fatal(err)
						}
					}
					b.ReportMetric(float64(cfg.Trials*b.N)/b.Elapsed().Seconds(), "trials/s")
				})
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Substrate micro-benchmarks.

// BenchmarkArchSimStep measures the architectural simulator's throughput.
func BenchmarkArchSimStep(b *testing.B) {
	prog := workload.MustGenerate(workload.Gzip, workload.Config{Seed: 1})
	m, err := prog.NewMemory()
	if err != nil {
		b.Fatal(err)
	}
	sim := arch.New(m, prog.Entry)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ev := sim.Step(); ev.Exception != arch.ExcNone {
			b.Fatal("golden exception")
		}
	}
}

// BenchmarkPipelineCycle measures detailed-pipeline cycle throughput.
func BenchmarkPipelineCycle(b *testing.B) {
	prog := workload.MustGenerate(workload.Gzip, workload.Config{Seed: 1})
	m, err := prog.NewMemory()
	if err != nil {
		b.Fatal(err)
	}
	p, err := pipeline.New(pipeline.DefaultConfig(), m, prog.Entry)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Cycle()
		if p.Status() != pipeline.StatusRunning {
			b.Fatal("pipeline stopped")
		}
	}
	b.ReportMetric(p.Stats().IPC(), "ipc")
}

// BenchmarkStateHash measures the state-digest cost that dominates masked
// detection in campaigns: the packed extent walk against the original
// per-element digest it replaced (kept behind SetLegacyHash).
func BenchmarkStateHash(b *testing.B) {
	prog := workload.MustGenerate(workload.Gzip, workload.Config{Seed: 1})
	m, err := prog.NewMemory()
	if err != nil {
		b.Fatal(err)
	}
	p, err := pipeline.New(pipeline.DefaultConfig(), m, prog.Entry)
	if err != nil {
		b.Fatal(err)
	}
	p.RunCycles(2000)
	for _, mode := range []struct {
		name   string
		legacy bool
	}{{"packed", false}, {"legacy", true}} {
		b.Run(mode.name, func(b *testing.B) {
			p.State().SetLegacyHash(mode.legacy)
			defer p.State().SetLegacyHash(false)
			b.ResetTimer()
			var sink uint64
			for i := 0; i < b.N; i++ {
				sink ^= p.State().Hash()
			}
			_ = sink
		})
	}
}

// BenchmarkPipelineCycleDecodeCache measures cycle throughput in the
// campaign configuration: a shared decode cache replaces isa.Decode on
// every fetched word.
func BenchmarkPipelineCycleDecodeCache(b *testing.B) {
	prog := workload.MustGenerate(workload.Gzip, workload.Config{Seed: 1})
	m, err := prog.NewMemory()
	if err != nil {
		b.Fatal(err)
	}
	p, err := pipeline.New(pipeline.DefaultConfig(), m, prog.Entry)
	if err != nil {
		b.Fatal(err)
	}
	p.SetDecodeCache(isa.NewDecodeCache(prog.CodeBase, prog.Code))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Cycle()
		if p.Status() != pipeline.StatusRunning {
			b.Fatal("pipeline stopped")
		}
	}
	b.ReportMetric(p.Stats().IPC(), "ipc")
}

// BenchmarkArchSimStepDecodeCache measures the architectural simulator in
// the VM-campaign configuration (shared decode cache attached).
func BenchmarkArchSimStepDecodeCache(b *testing.B) {
	prog := workload.MustGenerate(workload.Gzip, workload.Config{Seed: 1})
	m, err := prog.NewMemory()
	if err != nil {
		b.Fatal(err)
	}
	sim := arch.New(m, prog.Entry)
	sim.DCache = isa.NewDecodeCache(prog.CodeBase, prog.Code)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ev := sim.Step(); ev.Exception != arch.ExcNone {
			b.Fatal("golden exception")
		}
	}
}

// BenchmarkPipelineClone measures the per-trial forking cost of campaigns.
func BenchmarkPipelineClone(b *testing.B) {
	prog := workload.MustGenerate(workload.Gzip, workload.Config{Seed: 1})
	m, err := prog.NewMemory()
	if err != nil {
		b.Fatal(err)
	}
	p, err := pipeline.New(pipeline.DefaultConfig(), m, prog.Entry)
	if err != nil {
		b.Fatal(err)
	}
	p.RunCycles(5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := p.Clone()
		_ = c
	}
}

// BenchmarkPipelineResetFrom measures the clone pool's recycle path: reset
// an existing fork back to the master instead of allocating a fresh Clone.
func BenchmarkPipelineResetFrom(b *testing.B) {
	prog := workload.MustGenerate(workload.Gzip, workload.Config{Seed: 1})
	m, err := prog.NewMemory()
	if err != nil {
		b.Fatal(err)
	}
	p, err := pipeline.New(pipeline.DefaultConfig(), m, prog.Entry)
	if err != nil {
		b.Fatal(err)
	}
	p.RunCycles(5000)
	c := p.Clone()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.ResetFrom(p)
	}
}

// BenchmarkGoldenImageRoundTrip measures the warm-start IO path: encode the
// warmed pipeline into a golden image and restore it into a second pipeline
// (write + load per iteration, serial workers). The stored-bytes metric pins
// the image footprint the compression buys.
func BenchmarkGoldenImageRoundTrip(b *testing.B) {
	prog := workload.MustGenerate(workload.Gzip, workload.Config{Seed: 1})
	m, err := prog.NewMemory()
	if err != nil {
		b.Fatal(err)
	}
	p, err := pipeline.New(pipeline.DefaultConfig(), m, prog.Entry)
	if err != nil {
		b.Fatal(err)
	}
	p.RunCycles(10_000)
	m2, err := prog.NewMemory()
	if err != nil {
		b.Fatal(err)
	}
	p2, err := pipeline.New(pipeline.DefaultConfig(), m2, prog.Entry)
	if err != nil {
		b.Fatal(err)
	}
	path := b.TempDir() + "/bench.golden"
	meta := []byte("bench-golden")
	var stored int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := p.WriteGoldenImage(path, meta, 1)
		if err != nil {
			b.Fatal(err)
		}
		stored = st.StoredBytes
		if err := p2.LoadGoldenImage(path, meta, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(stored), "stored-B")
}

// BenchmarkRestoreOverhead measures the fault-free ReStore processor
// against the bare pipeline — the simulated counterpart of Figure 7.
func BenchmarkRestoreOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		speedup, err := perf.MeasureSlowdown(workload.Gzip, 42, 20_000,
			pipeline.DefaultConfig(), restore.Config{Interval: 100})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(speedup, "speedup")
	}
}

// BenchmarkDMRStep measures the dual-modular-redundancy pair's throughput
// (two pipelines plus commit comparison).
func BenchmarkDMRStep(b *testing.B) {
	prog := workload.MustGenerate(workload.Gzip, workload.Config{Seed: 1})
	m, err := prog.NewMemory()
	if err != nil {
		b.Fatal(err)
	}
	pipe, err := pipeline.New(pipeline.DefaultConfig(), m, prog.Entry)
	if err != nil {
		b.Fatal(err)
	}
	core := dmr.New(pipe, dmr.Config{})
	b.ResetTimer()
	rep, err := core.Run(uint64(b.N), uint64(b.N)*100+10_000)
	if err != nil {
		b.Fatal(err)
	}
	if rep.DetectedErrors != 0 {
		b.Fatal("fault-free divergence")
	}
}

// BenchmarkAssemble measures the textual assembler.
func BenchmarkAssemble(b *testing.B) {
	src := `
		.data buf 4096
		.base r10 buf
		.imm  r1 64
	loop:
		ldq  r2, 0(r10)
		addq r3, r2, r3
		stq  r3, 8(r10)
		subq r1, #1, r1
		bgt  r1, loop
		halt
	`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := asm.Assemble("bench", src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkloadGenerate measures synthetic benchmark generation.
func BenchmarkWorkloadGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := workload.Generate(workload.MCF, workload.Config{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
