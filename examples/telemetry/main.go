// Telemetry: run a miniature fault-injection campaign and a short ReStore
// processor run with the observability layer (internal/obs) attached, then
// read the telemetry back out — campaign throughput, per-outcome counts,
// clone-pool recycling, pipeline occupancy histograms, a per-rollback
// symptom trace, and a snapshot diff isolating the ReStore phase.
//
// The instrumentation is provably inert: this program runs the same campaign
// with and without the sink and checks the trials are identical before
// printing anything (the same contract TestCampaignMetricsInert and the CI
// metrics-inertness job enforce).
//
// Run with: go run ./examples/telemetry
package main

import (
	"fmt"
	"log"
	"os"
	"reflect"
	"runtime"

	"repro/internal/inject"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/restore"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func campaign(sink obs.Sink) (*inject.UArchResult, error) {
	return inject.RunUArch(inject.UArchConfig{
		Bench:          workload.MCF,
		Seed:           2026,
		Scale:          0.5,
		Points:         8,
		TrialsPerPoint: 30,
		WarmupCycles:   5_000,
		SpreadCycles:   10_000,
		WindowCycles:   5_000,
		Workers:        runtime.NumCPU(),
		Obs:            sink,
	})
}

func run() error {
	reg := obs.NewRegistry()

	// 1. The same campaign twice: bare, then instrumented. The trials must
	// match bit for bit — telemetry is write-only and never feeds back.
	bare, err := campaign(nil)
	if err != nil {
		return err
	}
	instrumented, err := campaign(reg)
	if err != nil {
		return err
	}
	if !reflect.DeepEqual(bare.Trials, instrumented.Trials) {
		return fmt.Errorf("telemetry changed campaign results — inertness contract broken")
	}
	fmt.Printf("campaign on %s: %d trials, metrics on == metrics off ✓\n\n",
		workload.MCF, len(instrumented.Trials))

	// 2. What the campaign recorded.
	counter := func(name string) int64 { return reg.Counter(name).Value() }
	fmt.Println("campaign telemetry:")
	fmt.Printf("  trials/sec        %.0f\n", reg.Gauge("campaign_uarch_trials_per_second").Value())
	fmt.Printf("  worker busy       %v across %d trials\n",
		reg.Timer("campaign_uarch_worker_busy").Total().Round(1000),
		reg.Timer("campaign_uarch_worker_busy").Count())
	hits, misses := counter("campaign_uarch_clone_pool_hits_total"), counter("campaign_uarch_clone_pool_misses_total")
	fmt.Printf("  clone pool        %d hits / %d misses (%.0f%% recycled)\n",
		hits, misses, 100*float64(hits)/float64(hits+misses))
	for _, outcome := range []string{"masked", "exception", "deadlock", "cfv", "sdc", "other"} {
		if n := counter("campaign_uarch_outcome_" + outcome + "_total"); n > 0 {
			fmt.Printf("  outcome %-9s %d\n", outcome, n)
		}
	}
	if m, ok := reg.Snapshot().Get("pipeline_rob_occupancy"); ok && m.Count > 0 {
		fmt.Printf("  ROB occupancy     mean %.1f over %d cycles sampled on the master\n",
			m.Value/float64(m.Count), m.Count)
	}

	// 3. A ReStore run with symptom tracing, isolated via snapshot diff.
	before := reg.Snapshot()
	trace := obs.NewTrace(64)
	proc, err := restoreProcessor(reg, trace)
	if err != nil {
		return err
	}
	if _, err := proc.Run(60_000, 60_000*400); err != nil {
		return err
	}
	diff := reg.Snapshot().Diff(before)

	fmt.Println("\nReStore phase (snapshot diff against the campaign):")
	for _, name := range []string{
		"restore_rollbacks_total",
		"restore_symptom_branch_total",
		"restore_symptom_exception_total",
		"restore_symptom_deadlock_total",
	} {
		if m, ok := diff.Get(name); ok && m.Value > 0 {
			fmt.Printf("  %-30s %.0f\n", name, m.Value)
		}
	}
	if m, ok := diff.Get("restore_rollback_depth_insts"); ok && m.Count > 0 {
		fmt.Printf("  %-30s mean %.1f insts\n", "rollback depth", m.Value/float64(m.Count))
	}
	if evs := trace.Events(); len(evs) > 0 {
		fmt.Printf("\nfirst symptom events (of %d retained, %d evicted):\n", len(evs), trace.Dropped())
		for i, ev := range evs {
			if i == 5 {
				break
			}
			fmt.Print("  ")
			fmt.Print(ev.Name)
			for _, f := range ev.Fields {
				fmt.Printf(" %s=%d", f.Key, f.Value)
			}
			fmt.Println()
		}
	}

	// 4. The full registry in Prometheus text format, as -metrics would
	// write it.
	fmt.Println("\nfull registry (Prometheus text format):")
	return reg.Snapshot().WritePrometheus(os.Stdout)
}

func restoreProcessor(sink obs.Sink, trace *obs.Trace) (*restore.Processor, error) {
	// MCF's pointer-chasing control flow produces high-confidence branch
	// mispredictions, so a fault-free run still triggers (false-positive)
	// symptom rollbacks — exactly what the trace is for.
	prog, err := workload.Generate(workload.MCF, workload.Config{Seed: 7, Scale: 0.5})
	if err != nil {
		return nil, err
	}
	m, err := prog.NewMemory()
	if err != nil {
		return nil, err
	}
	pipe, err := pipeline.New(pipeline.DefaultConfig(), m, prog.Entry)
	if err != nil {
		return nil, err
	}
	return restore.New(pipe, restore.Config{
		Interval: 100,
		Obs:      sink,
		Trace:    trace,
	}), nil
}
