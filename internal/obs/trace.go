package obs

import (
	"fmt"
	"strings"
	"sync"
)

// Trace is a bounded ring of discrete events — the symptom/rollback log of
// a ReStore run. When the ring is full the oldest event is dropped and
// counted, so a runaway symptom storm costs memory proportional to the
// capacity, never the run length. Emit is nil-safe (a nil *Trace discards),
// so configs carry an optional trace with no branches at the emit sites.
type Trace struct {
	mu      sync.Mutex
	cap     int
	start   int
	events  []Event
	dropped int64
}

// Event is one traced occurrence: a name plus ordered integer fields.
// Fields stay ordered (not a map) so rendering is deterministic.
type Event struct {
	Name   string  `json:"name"`
	Fields []Field `json:"fields,omitempty"`
}

// Field is one key/value pair on an event.
type Field struct {
	Key   string `json:"key"`
	Value int64  `json:"value"`
}

// F builds a Field; it exists to keep emit sites short:
// tr.Emit("rollback", obs.F("depth", 12)).
func F(key string, value int64) Field {
	return Field{Key: key, Value: value}
}

// NewTrace returns a trace retaining at most capacity events (minimum 1).
func NewTrace(capacity int) *Trace {
	if capacity < 1 {
		capacity = 1
	}
	return &Trace{cap: capacity}
}

// Emit appends an event, evicting the oldest if the ring is full.
func (t *Trace) Emit(name string, fields ...Field) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ev := Event{Name: name, Fields: fields}
	if len(t.events) < t.cap {
		t.events = append(t.events, ev)
		return
	}
	t.events[t.start] = ev
	t.start = (t.start + 1) % t.cap
	t.dropped++
}

// Events returns the retained events, oldest first. Exporter/test-only, as
// with metric reads.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.events))
	out = append(out, t.events[t.start:]...)
	out = append(out, t.events[:t.start]...)
	return out
}

// Dropped returns how many events were evicted. Exporter/test-only.
func (t *Trace) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Render formats the retained events one per line:
//
//	rollback depth=12 latency=48
func (t *Trace) Render() string {
	var b strings.Builder
	for _, ev := range t.Events() {
		b.WriteString(ev.Name)
		for _, f := range ev.Fields {
			fmt.Fprintf(&b, " %s=%d", f.Key, f.Value)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
