// Faultcampaign: run a miniature statistical fault-injection campaign
// against the pipeline model and print the resulting coverage table — a
// single-benchmark, reduced-trial version of the paper's Figure 4/5
// methodology (Section 4.2).
//
// Every trial flips one uniformly random bit among the pipeline's ~34k
// latch and SRAM bits (caches and predictor tables excluded), then watches
// up to 10,000 cycles for symptoms: watchdog deadlock, ISA exceptions, and
// control-flow violations. The same trials are then classified twice: once
// with perfect control-flow detection (Figure 4) and once with the JRS
// high-confidence-misprediction detector (Figure 5).
//
// Run with: go run ./examples/faultcampaign
package main

import (
	"fmt"
	"log"
	"runtime"

	"repro/internal/inject"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := inject.UArchConfig{
		Bench:          workload.MCF,
		Seed:           2026,
		Points:         10,
		TrialsPerPoint: 40,
		// Trials fan out across every CPU; the campaign engine pre-draws
		// all random picks serially, so the results are bit-identical to
		// a Workers: 0 serial run.
		Workers: runtime.NumCPU(),
	}
	fmt.Printf("injecting %d single-bit faults into the pipeline running %s (%d workers)...\n\n",
		cfg.Points*cfg.TrialsPerPoint, cfg.Bench, cfg.Workers)

	res, err := inject.RunUArch(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("state space: %d bits (%d in latches, %d in SRAMs)\n",
		res.TotalBits, res.LatchBits, res.TotalBits-res.LatchBits)
	fmt.Printf("raw failure rate (no detection): %.1f%%  — paper: ~7%%\n\n",
		100*inject.RawFailureRate(res.Trials))

	intervals := []uint64{25, 50, 100, 200, 500, 1000, 2000}

	table := stats.NewStackedTable(
		"Coverage with perfect cfv identification (Figure 4 methodology)",
		"interval", inject.UArchCategories())
	for _, iv := range intervals {
		table.AddColumn(fmt.Sprint(iv), inject.UArchDistribution(res.Trials, iv, inject.DetectorPerfect))
	}
	fmt.Println(table.Render())

	fmt.Println("uncovered failure rate by detector and checkpoint interval:")
	fmt.Printf("%-10s %10s %10s %10s\n", "interval", "perfect", "jrs", "oracle-conf")
	for _, iv := range intervals {
		fmt.Printf("%-10d %9.2f%% %9.2f%% %9.2f%%\n", iv,
			100*inject.FailureRate(res.Trials, iv, inject.DetectorPerfect),
			100*inject.FailureRate(res.Trials, iv, inject.DetectorJRS),
			100*inject.FailureRate(res.Trials, iv, inject.DetectorOracleConfidence))
	}
	fmt.Println("\n(the gap between jrs and oracle-conf is the coverage the paper's")
	fmt.Println("Section 5.2.1 says a perfect confidence predictor would reclaim)")
	return nil
}
