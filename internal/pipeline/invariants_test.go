package pipeline

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

func TestInvariantsHoldDuringFaultFreeRuns(t *testing.T) {
	for _, bench := range workload.Benchmarks() {
		bench := bench
		t.Run(string(bench), func(t *testing.T) {
			p := newBenchPipeline(t, bench, DefaultConfig())
			for i := 0; i < 60; i++ {
				p.RunCycles(250)
				if p.Status() != StatusRunning {
					t.Fatalf("pipeline stopped: %v", p.Status())
				}
				if err := p.CheckInvariants(); err != nil {
					t.Fatalf("cycle %d: %v", p.Cycles(), err)
				}
			}
		})
	}
}

func TestInvariantsHoldAfterReset(t *testing.T) {
	p := newBenchPipeline(t, workload.GCC, DefaultConfig())
	p.RunCycles(4000)
	regs := p.ArchRegs()
	pc := p.CommitPC()
	p.Reset(regs, pc)
	if err := p.CheckInvariants(); err != nil {
		t.Fatalf("after reset: %v", err)
	}
	p.RunCycles(4000)
	if err := p.CheckInvariants(); err != nil {
		t.Fatalf("after resumed run: %v", err)
	}
}

func TestInvariantsDetectCorruption(t *testing.T) {
	// The checker must actually catch broken structures — corrupt the
	// free list so a mapped register appears free.
	p := newBenchPipeline(t, workload.Gzip, DefaultConfig())
	p.RunCycles(2000)
	if err := p.CheckInvariants(); err != nil {
		t.Fatalf("clean state flagged: %v", err)
	}
	mapped := p.archRAT.get(1)
	p.free.free(mapped)
	if err := p.CheckInvariants(); err == nil {
		t.Fatal("free/live conflict not detected")
	}
}

func TestInvariantsDetectRATAndFreeListCorruption(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(p *Pipeline)
		wantSub string
	}{
		{
			// A flipped high bit in a RAT SRAM word: the access paths
			// mask it into an alias, but the checker must report the raw
			// out-of-range tag, not the masked one.
			name:    "specRAT out of range",
			corrupt: func(p *Pipeline) { p.specRAT.m[3] = PhysRegs + 5 },
			wantSub: "specRAT[3]",
		},
		{
			name:    "archRAT out of range",
			corrupt: func(p *Pipeline) { p.archRAT.m[7] = 1 << 40 },
			wantSub: "archRAT[7]",
		},
		{
			// A cleared free bit leaks a register: nothing maps it and
			// nothing can ever allocate it. Only the population count
			// catches this — no free/live conflict exists.
			name: "leaked register",
			corrupt: func(p *Pipeline) {
				for w := range p.free.bits {
					if p.free.bits[w] != 0 {
						p.free.bits[w] &= p.free.bits[w] - 1 // drop lowest set bit
						return
					}
				}
				t.Fatal("no free register to leak")
			},
			wantSub: "free list holds",
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			p := newBenchPipeline(t, workload.Gzip, DefaultConfig())
			p.RunCycles(2000)
			if err := p.CheckInvariants(); err != nil {
				t.Fatalf("clean state flagged: %v", err)
			}
			tc.corrupt(p)
			err := p.CheckInvariants()
			if err == nil {
				t.Fatal("corruption not detected")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}
