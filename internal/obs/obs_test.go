package obs

import (
	"sync"
	"testing"
	"time"
)

// fakeClock installs a deterministic clock advancing `step` per read and
// returns a restore func.
func fakeClock(step time.Duration) func() {
	t := time.Unix(0, 0)
	now = func() time.Time {
		t = t.Add(step)
		return t
	}
	return func() { now = time.Now }
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("trials")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("trials") != c {
		t.Fatal("second lookup returned a different counter")
	}

	g := r.Gauge("rate")
	g.Set(2.5)
	g.Set(1.25)
	if got := g.Value(); got != 1.25 {
		t.Fatalf("gauge = %v, want 1.25", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	// Every write path through a nil sink must be a silent no-op.
	r.Counter("a").Inc()
	r.Counter("a").Add(3)
	r.Gauge("b").Set(1)
	r.Hist("c").Observe(7)
	r.Timer("d").Observe(time.Second)
	sw := r.Timer("d").Start()
	if d := sw.Stop(); d != 0 {
		t.Fatalf("nil stopwatch elapsed %v, want 0", d)
	}
	if n := len(r.Snapshot().Metrics); n != 0 {
		t.Fatalf("nil registry snapshot has %d metrics", n)
	}
	var tr *Trace
	tr.Emit("ev", F("k", 1))
	if tr.Events() != nil || tr.Dropped() != 0 {
		t.Fatal("nil trace retained events")
	}
}

func TestKindClashPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("registering one name as two kinds did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("x")
	r.Gauge("x")
}

func TestHistBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Hist("occ")
	for _, v := range []int64{0, 0, 1, 2, 3, 7, 1000, -5} {
		h.Observe(v)
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d, want 8", h.Count())
	}
	if h.Sum() != 1013 {
		t.Fatalf("sum = %d, want 1013", h.Sum())
	}
	// Cumulative bounds: le=0 counts the two zeros plus the clamped -5.
	bks := h.Buckets()
	want := map[float64]int64{0: 3, 1: 4, 3: 6, 7: 7, 1023: 8}
	for _, b := range bks {
		if w, ok := want[b.Le]; ok && b.Count != w {
			t.Errorf("bucket le=%v count=%d, want %d", b.Le, b.Count, w)
		}
	}
	if last := bks[len(bks)-1]; last.Count != 8 {
		t.Fatalf("final cumulative bucket = %d, want 8", last.Count)
	}
}

func TestTimerUsesPackageClock(t *testing.T) {
	defer fakeClock(10 * time.Millisecond)()
	r := NewRegistry()
	tm := r.Timer("busy")
	sw := tm.Start()
	if d := sw.Stop(); d != 10*time.Millisecond {
		t.Fatalf("elapsed = %v, want 10ms", d)
	}
	tm.Observe(5 * time.Millisecond)
	if tm.Count() != 2 || tm.Total() != 15*time.Millisecond {
		t.Fatalf("timer count=%d total=%v, want 2/15ms", tm.Count(), tm.Total())
	}
}

func TestSnapshotAndDiff(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(10)
	r.Gauge("g").Set(3)
	r.Hist("h").Observe(4)
	before := r.Snapshot()

	r.Counter("c").Add(5)
	r.Gauge("g").Set(9)
	r.Hist("h").Observe(4)
	r.Hist("h").Observe(100)
	after := r.Snapshot()

	d := after.Diff(before)
	if m, _ := d.Get("c"); m.Value != 5 {
		t.Fatalf("counter diff = %v, want 5", m.Value)
	}
	if m, _ := d.Get("g"); m.Value != 9 {
		t.Fatalf("gauge diff = %v, want current value 9", m.Value)
	}
	m, _ := d.Get("h")
	if m.Count != 2 || m.Value != 104 {
		t.Fatalf("hist diff count=%d sum=%v, want 2/104", m.Count, m.Value)
	}
	// The final bucket of the diff must count exactly the new observations,
	// including the 100 that landed in a bucket `before` never materialised
	// (export is sparse, so the last bound is 127 = the bucket holding 100).
	last := m.Buckets[len(m.Buckets)-1]
	if last.Le != 127 || last.Count != 2 {
		t.Fatalf("diff final bucket le=%v count=%d, want 127/2", last.Le, last.Count)
	}
}

func TestSnapshotOrderDeterministic(t *testing.T) {
	r := NewRegistry()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		r.Counter(n).Inc()
	}
	s := r.Snapshot()
	for i, want := range []string{"alpha", "mid", "zeta"} {
		if s.Metrics[i].Name != want {
			t.Fatalf("metric[%d] = %q, want %q", i, s.Metrics[i].Name, want)
		}
	}
}

func TestConcurrentWrites(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("n").Inc()
				r.Hist("h").Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("n").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Hist("h").Count(); got != 8000 {
		t.Fatalf("hist count = %d, want 8000", got)
	}
}

func TestTraceRingEviction(t *testing.T) {
	tr := NewTrace(3)
	for i := int64(1); i <= 5; i++ {
		tr.Emit("e", F("i", i))
	}
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d events, want 3", len(evs))
	}
	for i, want := range []int64{3, 4, 5} {
		if evs[i].Fields[0].Value != want {
			t.Fatalf("event[%d] = %d, want %d (oldest-first order)", i, evs[i].Fields[0].Value, want)
		}
	}
	if tr.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", tr.Dropped())
	}
	want := "e i=3\ne i=4\ne i=5\n"
	if got := tr.Render(); got != want {
		t.Fatalf("render = %q, want %q", got, want)
	}
}
