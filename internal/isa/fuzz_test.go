package isa

import "testing"

// FuzzDecode drives arbitrary 32-bit words through the decoder: no input
// may panic, and anything that decodes must survive a re-encode/re-decode
// round trip (the encoder canonicalises, so words need not match).
func FuzzDecode(f *testing.F) {
	f.Add(uint32(0))
	f.Add(uint32(0xFFFFFFFF))
	f.Add(Encode(Inst{Op: OpADDQ, Ra: 1, Rb: 2, Rc: 3}))
	f.Add(Encode(Inst{Op: OpLDQ, Ra: 4, Rb: 5, Disp: -8}))
	f.Add(Encode(Inst{Op: OpBEQ, Ra: 6, Disp: 100}))
	f.Add(Encode(Inst{Op: OpRET, Rb: 26}))
	f.Fuzz(func(t *testing.T, w uint32) {
		inst := Decode(w)
		_ = inst.String()
		if inst.Op == OpInvalid {
			return
		}
		again := Decode(Encode(inst))
		if again != inst {
			t.Fatalf("re-decode mismatch: %08x -> %+v -> %+v", w, inst, again)
		}
	})
}
