package analyzers

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"

	"repro/tools/restorelint/lint"
)

// ProtectPolicy guards the protection-policy abstraction two ways.
//
// First, switches over harden.Protection or protect.Kind must be exhaustive
// or carry an explicit default — adding a protection domain (say, DMR) or a
// policy kind must not silently fall through cost models, serializers, or
// classifiers.
//
// Second, campaign code must consult a compiled protection map only through
// the sanctioned consult point (a function named consultProtection): the
// fault-model semantics of a protected hit — corrected in place vs detected
// and flushed — live in one reviewed place, and a stray map read scattered
// through an engine is where a policy-vs-scheme divergence would hide.
var ProtectPolicy = &lint.Analyzer{
	Name: "protectpolicy",
	Doc:  "enforces exhaustive protection-domain switches and the single protection-map consult point",
	Run:  runProtectPolicy,
}

// protEnum matches the two protection-policy enumeration types.
func protEnum(t types.Type) (qualified string, obj *types.TypeName, ok bool) {
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", nil, false
	}
	o := named.Obj()
	if o.Pkg() == nil {
		return "", nil, false
	}
	switch {
	case o.Name() == "Protection" && o.Pkg().Name() == "harden":
		return "harden.Protection", o, true
	case o.Name() == "Kind" && o.Pkg().Name() == "protect":
		return "protect.Kind", o, true
	}
	return "", nil, false
}

func runProtectPolicy(pass *lint.Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.SwitchStmt:
				if node.Tag != nil {
					checkProtSwitch(pass, node)
				}
			case *ast.CallExpr:
				checkMapConsult(pass, node)
			}
			return true
		})
	}
}

// checkProtSwitch mirrors opcodeswitch for the policy enumerations: every
// exported constant of the switched type must be covered, or the switch must
// declare a default.
func checkProtSwitch(pass *lint.Pass, sw *ast.SwitchStmt) {
	info := pass.Pkg.Info
	tv, ok := info.Types[sw.Tag]
	if !ok {
		return
	}
	qual, obj, ok := protEnum(tv.Type)
	if !ok {
		return
	}

	covered := make(map[uint64]bool)
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return // explicit default: partial coverage is acknowledged
		}
		for _, e := range cc.List {
			etv, ok := info.Types[e]
			if !ok || etv.Value == nil {
				return // non-constant case: treated as a wildcard
			}
			if v, exact := constant.Uint64Val(constant.ToInt(etv.Value)); exact {
				covered[v] = true
			}
		}
	}

	var missing []string
	scope := obj.Pkg().Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !c.Exported() || !types.Identical(c.Type(), tv.Type) {
			continue
		}
		v, exact := constant.Uint64Val(constant.ToInt(c.Val()))
		if exact && !covered[v] {
			missing = append(missing, name)
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	pass.Reportf(sw.Pos(),
		"switch over %s misses %s and has no default case; cover them or add an explicit default",
		qual, strings.Join(missing, ", "))
}

// checkMapConsult flags Protected/Protection method calls on a harden.Map
// receiver outside the harden package itself and outside a function named
// consultProtection.
func checkMapConsult(pass *lint.Pass, call *ast.CallExpr) {
	if pass.Pkg.Types != nil && pass.Pkg.Types.Name() == "harden" {
		return // the map's own package may read it freely
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Protected" && sel.Sel.Name != "Protection") {
		return
	}
	recv, ok := pass.Pkg.Info.Types[sel.X]
	if !ok {
		return
	}
	t := recv.Type
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return
	}
	obj := named.Obj()
	if obj.Name() != "Map" || obj.Pkg() == nil || obj.Pkg().Name() != "harden" {
		return
	}
	if fd := pass.Pkg.EnclosingFunc(call.Pos()); fd != nil && fd.Name.Name == "consultProtection" {
		return
	}
	pass.Reportf(call.Pos(),
		"harden.Map.%s read outside consultProtection; campaign code must consult protection maps through the sanctioned consult point",
		sel.Sel.Name)
}
