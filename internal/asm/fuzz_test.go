package asm

import "testing"

// FuzzAssemble drives arbitrary text through the assembler: inputs either
// assemble or return an error, never panic.
func FuzzAssemble(f *testing.F) {
	f.Add("addq r1, r2, r3\nhalt\n")
	f.Add(".data d 64\n.base r10 d\nldq r1, 0(r10)\nhalt")
	f.Add("loop:\n subq r1, #1, r1\n bgt r1, loop\n")
	f.Add(".imm r5 0xdeadbeef")
	f.Add("; comment only")
	f.Add("bogus stuff ( here")
	f.Fuzz(func(t *testing.T, src string) {
		_, _ = Assemble("fuzz", src)
	})
}
