// Package trace renders pipeline execution as human-readable commit traces
// and summary statistics. It backs the restore-trace command and is useful
// anywhere a run needs to be inspected instruction by instruction — for
// example when diagnosing how an injected fault propagated.
package trace

import (
	"fmt"
	"io"

	"repro/internal/arch"
	"repro/internal/pipeline"
)

// Options controls trace rendering.
type Options struct {
	// MaxInstructions bounds the number of commits traced (0 = no bound).
	MaxInstructions uint64
	// ShowStores annotates store commits with address and value.
	ShowStores bool
	// ShowBranches annotates branch commits with direction and target.
	ShowBranches bool
	// ShowRegs annotates register writebacks with the destination value.
	ShowRegs bool
}

// DefaultOptions enables all annotations.
func DefaultOptions() Options {
	return Options{ShowStores: true, ShowBranches: true, ShowRegs: true}
}

// Writer streams commit events as formatted trace lines.
type Writer struct {
	w     io.Writer
	opts  Options
	count uint64
	err   error
}

// NewWriter returns a trace writer.
func NewWriter(w io.Writer, opts Options) *Writer {
	return &Writer{w: w, opts: opts}
}

// Count returns the number of events written.
func (t *Writer) Count() uint64 { return t.count }

// Err returns the first write error, if any.
func (t *Writer) Err() error { return t.err }

// Done reports whether the instruction bound has been reached.
func (t *Writer) Done() bool {
	return t.opts.MaxInstructions > 0 && t.count >= t.opts.MaxInstructions
}

// Commit formats one commit event. Wire it to pipeline.CommitHook.
func (t *Writer) Commit(ev pipeline.CommitEvent) {
	if t.err != nil || t.Done() {
		return
	}
	t.count++
	line := FormatEvent(ev, t.opts)
	if _, err := io.WriteString(t.w, line+"\n"); err != nil {
		t.err = err
	}
}

// FormatEvent renders a single commit event as one line.
func FormatEvent(ev pipeline.CommitEvent, opts Options) string {
	line := fmt.Sprintf("%10d  %#010x  %-24s", ev.Index, ev.PC, ev.Inst)
	switch {
	case ev.Exception != arch.ExcNone:
		line += fmt.Sprintf("  !! %v at %#x", ev.Exception, ev.ExcAddr)
	case ev.Halted:
		line += "  << halt"
	default:
		if opts.ShowRegs && ev.HasDest {
			line += fmt.Sprintf("  %s=%#x", ev.DestArch, ev.DestVal)
		}
		if opts.ShowStores && ev.IsStore {
			line += fmt.Sprintf("  [%#x]=%#x", ev.MemAddr, ev.StoreVal)
		}
		if opts.ShowBranches && ev.IsBranch {
			dir := "not-taken"
			if ev.Taken {
				dir = fmt.Sprintf("taken -> %#x", ev.Target)
			}
			line += "  " + dir
		}
	}
	return line
}

// Summary renders run statistics in a compact block.
func Summary(w io.Writer, s pipeline.Stats) error {
	rows := []struct {
		name  string
		value string
	}{
		{"cycles", fmt.Sprint(s.Cycles)},
		{"retired", fmt.Sprint(s.Retired)},
		{"IPC", fmt.Sprintf("%.3f", s.IPC())},
		{"branches", fmt.Sprint(s.Branches)},
		{"cond mispredicts", fmt.Sprintf("%d (%.2f%%)", s.CommittedCondMispredicts,
			pct(s.CommittedCondMispredicts, s.CondBranches))},
		{"HC mispredicts", fmt.Sprint(s.HCMispredicts)},
		{"flushes", fmt.Sprint(s.Flushes)},
		{"loads issued", fmt.Sprint(s.LoadsIssued)},
		{"stores retired", fmt.Sprint(s.StoresRetired)},
		{"I$/D$ misses", fmt.Sprintf("%d / %d", s.ICacheMisses, s.DCacheMisses)},
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%-18s %s\n", r.name, r.value); err != nil {
			return err
		}
	}
	return nil
}

func pct(n, d uint64) float64 {
	if d == 0 {
		return 0
	}
	return 100 * float64(n) / float64(d)
}
